type kind = Fsm | Counter | Datapath

type t = {
  entity_name : string;
  reg_name : string;
  kind : kind;
  width : int;
}

let kind_of_reg_class = function
  | Rtl.Mdl.Fsm -> Some Fsm
  | Rtl.Mdl.Counter -> Some Counter
  | Rtl.Mdl.Datapath -> Some Datapath
  | Rtl.Mdl.Plain -> None

let discover (m : Rtl.Mdl.t) =
  List.filter_map
    (fun (r : Rtl.Mdl.reg) ->
      if r.parity_protected then
        match kind_of_reg_class r.reg_class with
        | Some kind ->
          Some
            { entity_name = r.reg_name; reg_name = r.reg_name; kind;
              width = r.reg_width }
        | None -> None
      else None)
    m.Rtl.Mdl.regs

let pp ppf t =
  let kind =
    match t.kind with Fsm -> "fsm" | Counter -> "counter" | Datapath -> "datapath"
  in
  Format.fprintf ppf "%s (%s, %d bits)" t.entity_name kind t.width
