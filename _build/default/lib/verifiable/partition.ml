module E = Rtl.Expr
module M = Rtl.Mdl
module A = Psl.Ast

type plan = {
  original : A.vunit;
  sub_vunits : (string * A.vunit) list;
  final_vunit : A.vunit;
  cut_mdl : M.t;
}

let integrity_decl signal =
  { A.prop_name = "pIntegrity_" ^ signal;
    body = A.Always (A.Bool (E.red_xor (E.var signal)));
    comment = Some (signal ^ " should be odd parity") }

let vunit_of mdl_name ~vunit_name ~assumes ~asserts =
  { A.vunit_name; bound_module = mdl_name; decls = assumes @ asserts;
    directives =
      List.map (fun (d : A.decl) -> { A.dir = A.Assume; target = d.A.prop_name })
        assumes
      @ List.map (fun (d : A.decl) -> { A.dir = A.Assert; target = d.A.prop_name })
          asserts }

(* free each cut wire into a primary input: its driver disappears and the
   model checker treats it as unconstrained (up to the assumed parity) *)
let cut_wires (m : M.t) cuts =
  List.iter
    (fun c ->
      if not (List.mem_assoc c m.M.wires) then
        invalid_arg
          (Printf.sprintf "Partition: %s is not an internal wire of %s" c
             m.M.name))
    cuts;
  let width c = List.assoc c m.M.wires in
  let freed =
    { m with
      wires = List.filter (fun (w, _) -> not (List.mem w cuts)) m.M.wires;
      assigns =
        List.filter (fun (a : M.assign) -> not (List.mem a.M.lhs cuts))
          m.M.assigns }
  in
  List.fold_left (fun acc c -> M.add_input acc c (width c)) freed cuts

let partition (info : Transform.info) spec ~output ~cuts =
  let name = info.Transform.mdl.M.name in
  let base_assumes = Propgen.integrity_assume_decls info spec in
  let original =
    vunit_of name
      ~vunit_name:(name ^ "_integrity_" ^ output)
      ~assumes:base_assumes
      ~asserts:[ integrity_decl output ]
  in
  let sub_vunits =
    List.map
      (fun c ->
        ( c,
          vunit_of name
            ~vunit_name:(name ^ "_integrity_" ^ c)
            ~assumes:base_assumes
            ~asserts:[ integrity_decl c ] ))
      cuts
  in
  let cut_assumes = List.map integrity_decl cuts in
  let final_vunit =
    vunit_of name
      ~vunit_name:(name ^ "_integrity_" ^ output ^ "_from_cuts")
      ~assumes:(base_assumes @ cut_assumes)
      ~asserts:[ integrity_decl output ]
  in
  let cut_mdl = cut_wires info.Transform.mdl cuts in
  { original; sub_vunits; final_vunit; cut_mdl }
