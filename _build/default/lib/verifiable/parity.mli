(** Odd-parity protection idioms as expression builders. Every protected
    value in the chip stores its payload together with one parity bit such
    that the total number of set bits is odd. *)

val encode : Rtl.Expr.t -> Rtl.Expr.t
(** [encode body] is [{~(^body), body}] — the payload with its odd-parity
    bit appended above the MSB. *)

val payload : Rtl.Expr.t -> width:int -> Rtl.Expr.t
(** [payload word ~width] strips the parity bit: the low [width - 1] bits of
    the [width]-bit protected word. *)

val ok : Rtl.Expr.t -> Rtl.Expr.t
(** [ok word] is the 1-bit legality check: the word has odd parity. *)

val violated : Rtl.Expr.t -> Rtl.Expr.t
(** [violated word] = [~(ok word)] — a checker output (one HE source). *)

val aggregate : Rtl.Expr.t list -> Rtl.Expr.t
(** OR of individual checker outputs — a module's hardware-error report. *)
