module E = Rtl.Expr

let encode body = E.concat (E.( !: ) (E.red_xor body)) body

let payload word ~width =
  if width < 2 then invalid_arg "Parity.payload: width must be at least 2";
  E.slice word ~hi:(width - 2) ~lo:0

let ok word = E.red_xor word
let violated word = E.( !: ) (ok word)

let aggregate = function
  | [] -> E.fls
  | first :: rest -> List.fold_left (fun acc e -> E.(acc |: e)) first rest
