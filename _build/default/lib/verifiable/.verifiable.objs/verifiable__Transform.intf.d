lib/verifiable/transform.mli: Entity Rtl
