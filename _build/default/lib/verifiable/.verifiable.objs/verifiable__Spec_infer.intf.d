lib/verifiable/spec_infer.mli: Propgen Rtl
