lib/verifiable/entity.ml: Format List Rtl
