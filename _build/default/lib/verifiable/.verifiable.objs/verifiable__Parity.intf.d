lib/verifiable/parity.mli: Rtl
