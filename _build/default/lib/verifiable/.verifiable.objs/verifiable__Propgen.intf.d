lib/verifiable/propgen.mli: Psl Transform
