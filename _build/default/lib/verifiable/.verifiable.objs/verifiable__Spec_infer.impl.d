lib/verifiable/spec_infer.ml: Entity Hashtbl List Option Propgen Result Rtl
