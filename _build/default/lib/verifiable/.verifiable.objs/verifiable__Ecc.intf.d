lib/verifiable/ecc.mli: Bitvec Rtl
