lib/verifiable/transform.ml: Entity Hashtbl List Printf Rtl String
