lib/verifiable/ecc.ml: Array Bitvec Fun List Rtl
