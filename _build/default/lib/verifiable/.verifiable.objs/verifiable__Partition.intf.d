lib/verifiable/partition.mli: Propgen Psl Rtl Transform
