lib/verifiable/propgen.ml: Entity List Printf Psl Rtl Transform
