lib/verifiable/parity.ml: List Rtl
