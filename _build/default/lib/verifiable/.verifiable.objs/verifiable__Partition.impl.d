lib/verifiable/partition.ml: List Printf Propgen Psl Rtl Transform
