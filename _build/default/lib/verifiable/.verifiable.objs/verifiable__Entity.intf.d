lib/verifiable/entity.mli: Format Rtl
