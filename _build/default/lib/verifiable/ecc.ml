module E = Rtl.Expr

type scheme = { data_width : int; check_bits : int; code_width : int }

let scheme ~data_width =
  if data_width <= 0 then invalid_arg "Ecc.scheme: width must be positive";
  let rec find r = if 1 lsl r >= data_width + r + 1 then r else find (r + 1) in
  let check_bits = find 2 in
  { data_width; check_bits; code_width = data_width + check_bits + 1 }

(* Hamming position (1-based) of each data bit: the non-power-of-two
   positions in order *)
let data_positions s =
  let is_pow2 n = n land (n - 1) = 0 in
  let rec collect pos acc remaining =
    if remaining = 0 then List.rev acc
    else if is_pow2 pos then collect (pos + 1) acc remaining
    else collect (pos + 1) (pos :: acc) (remaining - 1)
  in
  Array.of_list (collect 1 [] s.data_width)

let covers j pos = (pos lsr j) land 1 = 1

(* ---- reference implementation ---- *)

let encode_bv s payload =
  if Bitvec.width payload <> s.data_width then
    invalid_arg "Ecc.encode_bv: payload width mismatch";
  let dpos = data_positions s in
  let check j =
    let acc = ref false in
    for i = 0 to s.data_width - 1 do
      if covers j dpos.(i) then acc := !acc <> Bitvec.get payload i
    done;
    !acc
  in
  let checks = Array.init s.check_bits check in
  let body_parity =
    let acc = ref false in
    for i = 0 to s.data_width - 1 do
      acc := !acc <> Bitvec.get payload i
    done;
    Array.iter (fun c -> acc := !acc <> c) checks;
    !acc
  in
  Bitvec.init s.code_width (fun i ->
      if i < s.data_width then Bitvec.get payload i
      else if i < s.data_width + s.check_bits then checks.(i - s.data_width)
      else body_parity)

type decoded = {
  payload : Bitvec.t;
  corrected : bool;
  uncorrectable : bool;
}

let decode_bv s word =
  if Bitvec.width word <> s.code_width then
    invalid_arg "Ecc.decode_bv: codeword width mismatch";
  let dpos = data_positions s in
  let syndrome_bit j =
    let acc = ref (Bitvec.get word (s.data_width + j)) in
    for i = 0 to s.data_width - 1 do
      if covers j dpos.(i) then acc := !acc <> Bitvec.get word i
    done;
    !acc
  in
  let syndrome = ref 0 in
  for j = 0 to s.check_bits - 1 do
    if syndrome_bit j then syndrome := !syndrome lor (1 lsl j)
  done;
  let odd_overall = Bitvec.red_xor word in
  let corrected = odd_overall in
  let uncorrectable = (not odd_overall) && !syndrome <> 0 in
  let payload =
    Bitvec.init s.data_width (fun i ->
        let flip = odd_overall && !syndrome = dpos.(i) in
        if flip then not (Bitvec.get word i) else Bitvec.get word i)
  in
  { payload; corrected; uncorrectable }

(* ---- circuit builders ---- *)

let xor_fold = function
  | [] -> E.fls
  | first :: rest -> List.fold_left (fun acc e -> E.(acc ^: e)) first rest

let encode s payload =
  let dpos = data_positions s in
  let data_bit i = E.bit payload i in
  let check j =
    xor_fold
      (List.filter_map
         (fun i -> if covers j dpos.(i) then Some (data_bit i) else None)
         (List.init s.data_width Fun.id))
  in
  let checks = List.init s.check_bits check in
  let body_parity =
    xor_fold (List.init s.data_width data_bit @ checks)
  in
  (* concat_list wants [hi; ...; lo] *)
  E.concat_list
    (body_parity :: List.rev checks
     @ [ E.slice payload ~hi:(s.data_width - 1) ~lo:0 ])

let decode s word =
  let dpos = data_positions s in
  let data_bit i = E.bit word i in
  let stored_check j = E.bit word (s.data_width + j) in
  let syndrome_bit j =
    xor_fold
      (stored_check j
       :: List.filter_map
            (fun i -> if covers j dpos.(i) then Some (data_bit i) else None)
            (List.init s.data_width Fun.id))
  in
  let syndrome_bits = List.init s.check_bits syndrome_bit in
  let syndrome = E.concat_list (List.rev syndrome_bits) in
  let syndrome_zero =
    E.(syndrome ==: of_int ~width:s.check_bits 0)
  in
  let odd_overall = E.red_xor word in
  let corrected = odd_overall in
  let uncorrectable = E.(!:odd_overall &: !:syndrome_zero) in
  let payload_bits =
    List.init s.data_width (fun i ->
        let flip =
          E.(odd_overall &: (syndrome ==: of_int ~width:s.check_bits dpos.(i)))
        in
        E.(data_bit i ^: flip))
  in
  (E.concat_list (List.rev payload_bits), corrected, uncorrectable)
