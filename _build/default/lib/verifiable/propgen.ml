module E = Rtl.Expr
module A = Psl.Ast

type prop_class = P0 | P1 | P2 | P3

let class_name = function
  | P0 -> "Ability of Error Detection"
  | P1 -> "Soundness of Internal States"
  | P2 -> "Output Data Integrity"
  | P3 -> "Other Properties"

type spec = {
  he : string;
  he_map : (string * int) list;
  parity_inputs : string list;
  parity_outputs : string list;
  extra : (string * A.fl) list;
}

let he_any (info : Transform.info) spec =
  let w = Rtl.Mdl.signal_width info.Transform.mdl spec.he in
  if w = 1 then E.var spec.he else E.red_or (E.var spec.he)

(* the report expression for one checker source: its mapped HE bit when
   known, the whole bus otherwise *)
let he_for (info : Transform.info) spec source =
  match List.assoc_opt source spec.he_map with
  | Some bit ->
    let w = Rtl.Mdl.signal_width info.Transform.mdl spec.he in
    if w = 1 then E.var spec.he else E.bit (E.var spec.he) bit
  | None -> he_any info spec

let he_width (info : Transform.info) spec =
  Rtl.Mdl.signal_width info.Transform.mdl spec.he

let ec_none (info : Transform.info) =
  let n = List.length info.Transform.entities in
  let ec = E.var info.Transform.ec_port in
  if n = 1 then E.( !: ) ec else E.( !: ) (E.red_or ec)

let decl name ?comment body = { A.prop_name = name; body; comment }
let assert_ name = { A.dir = A.Assert; target = name }
let assume_ name = { A.dir = A.Assume; target = name }

(* P0 (Figure 2): per entity, Check1 — injected illegal value reports next
   cycle; per parity input, Check2 — illegal input reports next cycle. *)
let edetect_vunit (info : Transform.info) spec =
  let entity_props =
    List.map
      (fun (e : Entity.t) ->
        let ec = Transform.control_bit info e in
        let ed = Transform.data_slice info e in
        let he = he_for info spec e.entity_name in
        decl
          ("pCheck_" ^ e.entity_name)
          ~comment:"ED should be odd parity"
          (A.Always
             (A.Implies
                (A.Bool E.(ec &: !:(red_xor ed)), A.Next (A.Bool he)))))
      info.Transform.entities
  in
  let input_props =
    List.map
      (fun i ->
        let he = he_for info spec i in
        decl ("pCheckIn_" ^ i) ~comment:"I should be odd parity"
          (A.Always
             (A.Implies (A.Bool E.(!:(red_xor (var i))), A.Next (A.Bool he)))))
      spec.parity_inputs
  in
  let decls = entity_props @ input_props in
  { A.vunit_name = info.Transform.mdl.Rtl.Mdl.name ^ "_edetect";
    bound_module = info.Transform.mdl.Rtl.Mdl.name; decls;
    directives = List.map (fun (d : A.decl) -> assert_ d.A.prop_name) decls }

let integrity_assumes (info : Transform.info) spec =
  let input_assumes =
    List.map
      (fun i ->
        decl ("pIntegrityI_" ^ i) ~comment:"I should be odd parity"
          (A.Always (A.Bool (E.red_xor (E.var i)))))
      spec.parity_inputs
  in
  let no_injection =
    decl "pNoErrInjection" ~comment:"Error injection is disabled"
      (A.Always (A.Bool (ec_none info)))
  in
  input_assumes @ [ no_injection ]

let integrity_assume_decls = integrity_assumes

(* P1 (Figure 3): under legal inputs and no injection, no checker fires. *)
let soundness_vunit (info : Transform.info) spec =
  let assumes = integrity_assumes info spec in
  let w = he_width info spec in
  let asserts =
    List.init w (fun j ->
        let bit = if w = 1 then E.var spec.he else E.bit (E.var spec.he) j in
        decl
          (if w = 1 then "pNoError" else Printf.sprintf "pNoError_%d" j)
          ~comment:"then no error is reported"
          (A.Never (A.Bool bit)))
  in
  { A.vunit_name = info.Transform.mdl.Rtl.Mdl.name ^ "_soundness";
    bound_module = info.Transform.mdl.Rtl.Mdl.name;
    decls = assumes @ asserts;
    directives =
      List.map (fun (d : A.decl) -> assume_ d.A.prop_name) assumes
      @ List.map (fun (d : A.decl) -> assert_ d.A.prop_name) asserts }

(* P2 (Figure 4): under the same assumptions, outputs keep odd parity. *)
let integrity_vunit (info : Transform.info) spec =
  let assumes = integrity_assumes info spec in
  let asserts =
    List.map
      (fun o ->
        decl ("pIntegrityO_" ^ o) ~comment:"then integrity of O holds"
          (A.Always (A.Bool (E.red_xor (E.var o)))))
      spec.parity_outputs
  in
  { A.vunit_name = info.Transform.mdl.Rtl.Mdl.name ^ "_integrity";
    bound_module = info.Transform.mdl.Rtl.Mdl.name;
    decls = assumes @ asserts;
    directives =
      List.map (fun (d : A.decl) -> assume_ d.A.prop_name) assumes
      @ List.map (fun (d : A.decl) -> assert_ d.A.prop_name) asserts }

let other_vunit (info : Transform.info) spec =
  match spec.extra with
  | [] -> None
  | extra ->
    let assumes = integrity_assumes info spec in
    let asserts = List.map (fun (name, body) -> decl name body) extra in
    Some
      { A.vunit_name = info.Transform.mdl.Rtl.Mdl.name ^ "_other";
        bound_module = info.Transform.mdl.Rtl.Mdl.name;
        decls = assumes @ asserts;
        directives =
          List.map (fun (d : A.decl) -> assume_ d.A.prop_name) assumes
          @ List.map (fun (d : A.decl) -> assert_ d.A.prop_name) asserts }

let all info spec =
  let base =
    [ (P0, edetect_vunit info spec); (P1, soundness_vunit info spec);
      (P2, integrity_vunit info spec) ]
  in
  match other_vunit info spec with
  | Some v -> base @ [ (P3, v) ]
  | None -> base

let assert_count (v : A.vunit) =
  List.length (List.filter (fun (d : A.directive) -> d.A.dir = A.Assert) v.A.directives)

let counts info spec =
  let count cls =
    List.fold_left
      (fun acc (c, v) -> if c = cls then acc + assert_count v else acc)
      0 (all info spec)
  in
  (count P0, count P1, count P2, count P3)
