(** The Verifiable-RTL transform of Figure 6: give every integrity entity an
    error-injection path through primary input ports.

    One control bit per entity ([I_ERR_INJ_C]) and one shared data bus
    ([I_ERR_INJ_D], as wide as the widest entity) are added; each protected
    register's next-state expression gains a selector. The ports must be
    tied to zero where the module is instantiated — the injection logic is
    inert in real silicon but gives the model checker a handle to corrupt
    any protected state. *)

type info = {
  mdl : Rtl.Mdl.t;  (** the transformed module *)
  ec_port : string;
  ed_port : string;
  entities : Entity.t list;  (** entity [i] is controlled by [EC[i]] *)
}

val apply : ?ec_port:string -> ?ed_port:string -> Rtl.Mdl.t -> info
(** Raises [Invalid_argument] if the module has no integrity entities or
    already declares the injection ports. *)

val control_bit : info -> Entity.t -> Rtl.Expr.t
(** The [EC] bit expression controlling an entity's selector. *)

val data_slice : info -> Entity.t -> Rtl.Expr.t
(** The [ED] slice feeding an entity (low bits of the shared bus). *)

val tie_offs : info -> (string * Rtl.Mdl.actual) list
(** Connections tying both ports to zero, for the parent instantiation
    (Figure 6's wrapper). *)

val is_injection_port : string -> bool
(** Recognizes injection port names (used by stimulus profiles and the
    area accounting). *)
