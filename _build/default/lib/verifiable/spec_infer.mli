(** Automatic integrity-specification extraction.

    The paper relied on designers writing the data-integrity specification
    by hand ("we used user-written properties, and automatic assertion
    extraction was not performed"). This module implements the obvious
    extension: infer a {!Propgen.spec} from the RTL's structure —

    - the hardware-error report is the output port named [HE];
    - parity-protected inputs are the inputs whose XOR-reduction is computed
      somewhere in the module (a checker on the raw input);
    - parity-protected outputs are the outputs driven (through wires) by a
      parity-protected register or by an odd-parity re-encoding;
    - the HE bit map is recovered by slicing the HE driver bit by bit and
      inspecting each bit's support, tracing latched input checkers back to
      the input they watch.

    Inference is conservative: it only reports what it can justify
    structurally, so a designer can always extend the result by hand. *)

val infer : Rtl.Mdl.t -> (Propgen.spec, string) result
(** Returns [Error] when the module has no [HE] output or no integrity
    entities. *)
