(** Stereotype property generation — the paper's core idea (§3): every leaf
    module gets the same three kinds of data-integrity properties, derived
    mechanically from its integrity interface, so designers need no formal
    expertise.

    - P0, ability of error detection (Figure 2): injecting an illegal value
      through the error-injection port, or presenting an illegal primary
      input, must raise HE the next cycle;
    - P1, soundness of internal states (Figure 3): with legal inputs and no
      injection, HE never fires;
    - P2, output data integrity (Figure 4): with legal inputs and no
      injection, outputs keep odd parity;
    - P3, other properties supplied by the designer. *)

type prop_class = P0 | P1 | P2 | P3

val class_name : prop_class -> string
(** ["Ability of Error Detection"], etc. *)

type spec = {
  he : string;  (** hardware-error report signal (1 bit per checker group) *)
  he_map : (string * int) list;
      (** which HE bit carries each entity's / parity input's checker; when
          an entry exists the P0 property asserts that specific report bit,
          keeping its verification cone small — otherwise it asserts the OR
          of the whole HE bus *)
  parity_inputs : string list;  (** inputs carrying odd-parity codewords *)
  parity_outputs : string list;
  extra : (string * Psl.Ast.fl) list;  (** P3, with property names *)
}

val integrity_assume_decls : Transform.info -> spec -> Psl.Ast.decl list
(** The shared P1/P2 assumption set: odd parity on every protected input and
    no error injection ([pIntegrityI_*], [pNoErrInjection]). *)

val edetect_vunit : Transform.info -> spec -> Psl.Ast.vunit
val soundness_vunit : Transform.info -> spec -> Psl.Ast.vunit
val integrity_vunit : Transform.info -> spec -> Psl.Ast.vunit
val other_vunit : Transform.info -> spec -> Psl.Ast.vunit option
(** [None] when [spec.extra] is empty. *)

val all : Transform.info -> spec -> (prop_class * Psl.Ast.vunit) list

val assert_count : Psl.Ast.vunit -> int
val counts : Transform.info -> spec -> int * int * int * int
(** [(p0, p1, p2, p3)] assert counts — the paper's Table 2 columns. *)
