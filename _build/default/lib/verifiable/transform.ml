module E = Rtl.Expr
module M = Rtl.Mdl

type info = {
  mdl : M.t;
  ec_port : string;
  ed_port : string;
  entities : Entity.t list;
}

let apply ?(ec_port = "I_ERR_INJ_C") ?(ed_port = "I_ERR_INJ_D") m =
  let entities = Entity.discover m in
  if entities = [] then
    invalid_arg
      (Printf.sprintf "Transform.apply: %s has no integrity entities"
         m.M.name);
  List.iter
    (fun p ->
      match M.find_port m p with
      | Some _ ->
        invalid_arg
          (Printf.sprintf "Transform.apply: %s already has port %s" m.M.name p)
      | None -> ())
    [ ec_port; ed_port ];
  let n = List.length entities in
  let dwidth =
    List.fold_left (fun acc (e : Entity.t) -> max acc e.width) 1 entities
  in
  let m = M.add_input m ec_port n in
  let m = M.add_input m ed_port dwidth in
  let index_of =
    let tbl = Hashtbl.create 7 in
    List.iteri (fun i (e : Entity.t) -> Hashtbl.replace tbl e.reg_name i)
      entities;
    fun name -> Hashtbl.find_opt tbl name
  in
  let inject (r : M.reg) =
    match index_of r.reg_name with
    | None -> r
    | Some i ->
      let sel = if n = 1 then E.var ec_port else E.bit (E.var ec_port) i in
      let data =
        if dwidth = r.reg_width then E.var ed_port
        else E.slice (E.var ed_port) ~hi:(r.reg_width - 1) ~lo:0
      in
      { r with next = E.mux sel data r.next }
  in
  let m = M.map_regs inject m in
  { mdl = m; ec_port; ed_port; entities }

let entity_index info (e : Entity.t) =
  let rec go i = function
    | [] -> invalid_arg "Transform: unknown entity"
    | (x : Entity.t) :: rest -> if x.reg_name = e.reg_name then i else go (i + 1) rest
  in
  go 0 info.entities

let control_bit info e =
  let n = List.length info.entities in
  if n = 1 then E.var info.ec_port
  else E.bit (E.var info.ec_port) (entity_index info e)

let data_slice info (e : Entity.t) =
  let dwidth =
    List.fold_left (fun acc (x : Entity.t) -> max acc x.width) 1 info.entities
  in
  if dwidth = e.width then E.var info.ed_port
  else E.slice (E.var info.ed_port) ~hi:(e.width - 1) ~lo:0

let tie_offs info =
  let n = List.length info.entities in
  let dwidth =
    List.fold_left (fun acc (e : Entity.t) -> max acc e.width) 1 info.entities
  in
  [ (info.ec_port, M.Expr (E.of_int ~width:n 0));
    (info.ed_port, M.Expr (E.of_int ~width:dwidth 0)) ]

let is_injection_port name =
  let sub = "ERR_INJ" in
  let n = String.length name and m = String.length sub in
  let rec go i = i + m <= n && (String.sub name i m = sub || go (i + 1)) in
  go 0
