(** Integrity entities: the units of error injection and integrity checking.

    The paper requires "error injection controlled independently per entity
    for integrity checking" — an entity is a parity-protected FSM state
    register, counter, or datapath register. *)

type kind = Fsm | Counter | Datapath

type t = {
  entity_name : string;
  reg_name : string;
  kind : kind;
  width : int;  (** register width including its embedded parity bit *)
}

val discover : Rtl.Mdl.t -> t list
(** All parity-protected registers of a module, in declaration order. *)

val kind_of_reg_class : Rtl.Mdl.reg_class -> kind option
val pp : Format.formatter -> t -> unit
