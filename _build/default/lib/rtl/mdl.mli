(** RTL module definitions.

    A module has ports, internal wires driven by combinational assigns,
    clocked registers (single implicit clock, synchronous active-high reset),
    and instances of other modules. Registers carry the metadata the
    data-integrity methodology needs: a class (FSM / counter / datapath) and
    a parity-protection flag meaning the stored value, including its embedded
    parity bit, must keep odd parity. *)

type dir = Input | Output

type port = { port_name : string; dir : dir; port_width : int }

type reg_class = Fsm | Counter | Datapath | Plain

type reg = {
  reg_name : string;
  reg_width : int;
  reset_value : Bitvec.t;
  next : Expr.t;  (** value latched at each clock edge when not in reset *)
  reg_class : reg_class;
  parity_protected : bool;
}

type assign = { lhs : string; rhs : Expr.t }

(** Actual connected to a formal port of an instance: an expression of the
    parent (inputs only, e.g. the tie-to-zero of Figure 6) or a parent net
    name (inputs or outputs). *)
type actual = Expr of Expr.t | Net of string

type instance = {
  inst_name : string;
  of_module : string;
  connections : (string * actual) list;
}

type t = {
  name : string;
  ports : port list;
  wires : (string * int) list;
  assigns : assign list;
  regs : reg list;
  instances : instance list;
  attrs : (string * string) list;
}

(** {1 Construction} *)

val create : string -> t

val add_input : t -> string -> int -> t
val add_output : t -> string -> int -> t
val add_wire : t -> string -> int -> t
val add_assign : t -> string -> Expr.t -> t

val add_reg :
  ?cls:reg_class ->
  ?parity_protected:bool ->
  ?reset:Bitvec.t ->
  t ->
  string ->
  int ->
  Expr.t ->
  t
(** [add_reg m name width next] declares register [name]. [reset] defaults to
    all zeros. *)

val add_instance : t -> string -> of_module:string -> (string * actual) list -> t
val add_attr : t -> string -> string -> t

(** {1 Queries} *)

val find_port : t -> string -> port option
val inputs : t -> port list
val outputs : t -> port list
val find_reg : t -> string -> reg option
val is_leaf : t -> bool
(** A leaf module instantiates nothing — the unit of formal verification in
    the paper. *)

val signal_width : t -> string -> int
(** Width of a port, wire or register. Raises [Not_found] if undeclared. *)

val declared_signals : t -> (string * int) list

val map_regs : (reg -> reg) -> t -> t
val map_exprs : (Expr.t -> Expr.t) -> t -> t
(** Applies to every assign right-hand side, register next function, and
    instance [Expr] actual. *)

val attr : t -> string -> string option
