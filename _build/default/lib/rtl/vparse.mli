(** Parser for the synthesizable Verilog subset that {!Verilog} emits —
    module headers, port/wire/reg declarations, continuous assigns, the
    single-clock always block idiom of the paper's Figure 6, and module
    instances with named connections.

    [parse (Verilog.module_to_string m)] reconstructs [m] up to register
    metadata (the class and parity annotations are not representable in
    plain Verilog and default to [Plain]/not-protected; use
    {!annotate_like} to copy them back from a reference module). *)

exception Error of string * int
(** Message and character offset. *)

val parse : string -> Mdl.t list
(** Parse one or more module definitions. *)

val parse_design : string -> Design.t

val annotate_like : reference:Mdl.t -> Mdl.t -> Mdl.t
(** Copy register class and parity-protection flags from same-named
    registers of [reference]. *)
