module String_map = Map.Make (String)

type t = Mdl.t String_map.t

let empty = String_map.empty

let add t (m : Mdl.t) =
  if String_map.mem m.name t then
    invalid_arg (Printf.sprintf "Design.add: duplicate module %s" m.name);
  String_map.add m.name m t

let replace t (m : Mdl.t) = String_map.add m.name m t
let find t name = String_map.find_opt name t

let find_exn t name =
  match find t name with
  | Some m -> m
  | None -> invalid_arg (Printf.sprintf "Design: unknown module %s" name)

let modules t = List.map snd (String_map.bindings t)
let leaf_modules t = List.filter Mdl.is_leaf (modules t)
let of_modules ms = List.fold_left add empty ms

let check_closed t =
  let missing = ref [] in
  let rec visit path (m : Mdl.t) =
    if List.mem m.name path then
      Error (Printf.sprintf "instantiation cycle through %s" m.name)
    else
      List.fold_left
        (fun acc (i : Mdl.instance) ->
          match acc with
          | Error _ as e -> e
          | Ok () -> (
            match find t i.of_module with
            | None ->
              missing := i.of_module :: !missing;
              Error (Printf.sprintf "undefined module %s (instantiated in %s)"
                       i.of_module m.name)
            | Some child -> visit (m.name :: path) child))
        (Ok ()) m.instances
  in
  String_map.fold
    (fun _ m acc -> match acc with Error _ -> acc | Ok () -> visit [] m)
    t (Ok ())

let instance_tree t ~root =
  let rec go path (m : Mdl.t) acc =
    let acc = (path, m.name) :: acc in
    List.fold_left
      (fun acc (i : Mdl.instance) ->
        let child = find_exn t i.of_module in
        let child_path =
          if path = "" then i.inst_name else path ^ "." ^ i.inst_name
        in
        go child_path child acc)
      acc m.instances
  in
  List.rev (go "" (find_exn t root) [])

let submodule_count t ~root = List.length (instance_tree t ~root) - 1
