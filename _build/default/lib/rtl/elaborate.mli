(** Hierarchy elaboration: inline every instance reachable from a top module
    into a flat, levelized {!Netlist.t}. Signal names become hierarchical
    paths ([inst.sub.sig]); the top module's ports keep their plain names. *)

exception Error of string

val run : Design.t -> top:string -> Netlist.t
(** Raises {!Error} on unbound modules or an output port connected to an
    expression actual, and {!Netlist.Combinational_loop} via levelization. *)
