(** Verilog-2001 emission, in the style of the paper's Figure 6.

    Intended for human inspection and interchange with external tools; the
    output is synthesizable except that slices of compound expressions (legal
    in our IR) are emitted with an intermediate-style parenthesization. *)

val pp_module : Format.formatter -> Mdl.t -> unit
val pp_design : Format.formatter -> Design.t -> unit
val module_to_string : Mdl.t -> string
val design_to_string : Design.t -> string
