exception Error of string

type acc = {
  mutable wires : (string * int) list;
  mutable assigns : (string * Expr.t) list;
  mutable regs : Netlist.flat_reg list;
}

let run design ~top =
  (match Design.check_closed design with
   | Ok () -> ()
   | Error msg -> raise (Error msg));
  let top_module =
    match Design.find design top with
    | Some m -> m
    | None -> raise (Error (Printf.sprintf "unknown top module %s" top))
  in
  let acc = { wires = []; assigns = []; regs = [] } in
  let rec inline prefix (m : Mdl.t) =
    let qual name = if prefix = "" then name else prefix ^ "." ^ name in
    let rename = Expr.rename qual in
    List.iter (fun (w, width) -> acc.wires <- (qual w, width) :: acc.wires)
      m.wires;
    List.iter
      (fun (a : Mdl.assign) ->
        acc.assigns <- (qual a.lhs, rename a.rhs) :: acc.assigns)
      m.assigns;
    List.iter
      (fun (r : Mdl.reg) ->
        acc.regs <-
          { Netlist.name = qual r.reg_name; width = r.reg_width;
            reset_value = r.reset_value; next = rename r.next;
            cls = r.reg_class; parity_protected = r.parity_protected }
          :: acc.regs)
      m.regs;
    let inline_instance (i : Mdl.instance) =
      let child = Design.find_exn design i.of_module in
      let child_prefix = qual i.inst_name in
      (* Child ports become wires of the flat netlist; inputs are driven by
         the parent-side actual, outputs alias back into the parent net. *)
      List.iter
        (fun (p : Mdl.port) ->
          let flat_port = child_prefix ^ "." ^ p.port_name in
          acc.wires <- (flat_port, p.port_width) :: acc.wires;
          match List.assoc_opt p.port_name i.connections with
          | None ->
            if p.dir = Mdl.Input then
              raise
                (Error
                   (Printf.sprintf "unconnected input %s of instance %s in %s"
                      p.port_name i.inst_name m.name))
          | Some actual -> (
            match (p.dir, actual) with
            | Mdl.Input, Mdl.Expr e ->
              acc.assigns <- (flat_port, rename e) :: acc.assigns
            | Mdl.Input, Mdl.Net n ->
              acc.assigns <- (flat_port, Expr.Var (qual n)) :: acc.assigns
            | Mdl.Output, Mdl.Net n ->
              acc.assigns <- (qual n, Expr.Var flat_port) :: acc.assigns
            | Mdl.Output, Mdl.Expr _ ->
              raise
                (Error
                   (Printf.sprintf
                      "output %s of instance %s in %s connected to expression"
                      p.port_name i.inst_name m.name))))
        child.ports;
      inline child_prefix child
    in
    List.iter inline_instance m.instances
  in
  inline "" top_module;
  let port_pairs dir =
    List.filter_map
      (fun (p : Mdl.port) ->
        if p.dir = dir then Some (p.port_name, p.port_width) else None)
      top_module.ports
  in
  let nl =
    { Netlist.top; inputs = port_pairs Mdl.Input;
      outputs = port_pairs Mdl.Output; wires = List.rev acc.wires;
      assigns = List.rev acc.assigns; regs = List.rev acc.regs }
  in
  Netlist.levelize nl
