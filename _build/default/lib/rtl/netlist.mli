(** Flat (elaborated) netlists.

    All hierarchy has been inlined; signal names are hierarchical paths.
    Combinational assigns are stored in topological order, so a single
    left-to-right pass evaluates the cycle. *)

type flat_reg = {
  name : string;
  width : int;
  reset_value : Bitvec.t;
  next : Expr.t;
  cls : Mdl.reg_class;
  parity_protected : bool;
}

type t = {
  top : string;
  inputs : (string * int) list;
  outputs : (string * int) list;
  wires : (string * int) list;  (** internal combinational nets *)
  assigns : (string * Expr.t) list;  (** topologically sorted *)
  regs : flat_reg list;
}

exception Combinational_loop of string list
(** Raised by {!levelize} with the offending net names. *)

val signal_width : t -> string -> int
(** Raises [Not_found] for undeclared signals. *)

val signals : t -> (string * int) list
(** All declared signals: inputs, outputs, wires, registers. *)

val levelize : t -> t
(** Topologically sort [assigns]; registers and primary inputs are sources.
    Raises {!Combinational_loop}. *)

val validate : t -> (unit, string) result
(** Every assign target declared exactly once, every support signal declared,
    widths consistent, outputs driven. *)

val stats : t -> int * int * int
(** [(num inputs+outputs, num registers, num assigns)]. *)

val state_bits : t -> int
(** Total register bits — the model-checking problem size. *)

val pp_summary : Format.formatter -> t -> unit
