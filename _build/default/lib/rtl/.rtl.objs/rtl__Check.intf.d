lib/rtl/check.mli: Design Format Mdl
