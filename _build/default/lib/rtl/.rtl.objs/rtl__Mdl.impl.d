lib/rtl/mdl.ml: Bitvec Expr List Printf
