lib/rtl/vparse.ml: Bitvec Char Design Expr List Mdl Printf String
