lib/rtl/design.ml: List Map Mdl Printf String
