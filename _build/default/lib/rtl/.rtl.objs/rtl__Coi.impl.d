lib/rtl/coi.ml: Expr Hashtbl List Netlist Set String
