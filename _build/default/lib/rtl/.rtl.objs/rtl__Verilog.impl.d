lib/rtl/verilog.ml: Bitvec Design Expr Format List Mdl Printf String
