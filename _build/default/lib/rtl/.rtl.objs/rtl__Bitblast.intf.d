lib/rtl/bitblast.mli: Bexpr Bitvec Expr Netlist
