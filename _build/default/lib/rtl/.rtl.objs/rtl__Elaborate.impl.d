lib/rtl/elaborate.ml: Design Expr List Mdl Netlist Printf
