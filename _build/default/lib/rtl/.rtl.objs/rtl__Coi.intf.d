lib/rtl/coi.mli: Netlist
