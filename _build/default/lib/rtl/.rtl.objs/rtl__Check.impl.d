lib/rtl/check.ml: Design Expr Format Hashtbl List Mdl Option Printf
