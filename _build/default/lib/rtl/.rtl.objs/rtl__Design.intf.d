lib/rtl/design.mli: Mdl
