lib/rtl/bexpr.mli: Format
