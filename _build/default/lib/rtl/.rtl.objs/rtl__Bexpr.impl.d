lib/rtl/bexpr.ml: Format Hashtbl Int List Set
