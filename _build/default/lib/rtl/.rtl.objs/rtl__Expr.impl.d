lib/rtl/expr.ml: Bitvec Format List Printf Set Stdlib String
