lib/rtl/bitblast.ml: Array Bexpr Bitvec Expr Hashtbl List Netlist Printf
