lib/rtl/netlist.ml: Bitvec Expr Format Hashtbl List Mdl Printf
