lib/rtl/netlist.mli: Bitvec Expr Format Mdl
