lib/rtl/mdl.mli: Bitvec Expr
