lib/rtl/elaborate.mli: Design Netlist
