lib/rtl/vparse.mli: Design Mdl
