(** Word-level RTL expressions.

    Expressions reference signals of the enclosing module by name; widths are
    inferred relative to an environment giving each signal's width. *)

type unop =
  | Not        (** bitwise complement *)
  | Red_and    (** AND-reduction, width 1 *)
  | Red_or     (** OR-reduction, width 1 *)
  | Red_xor    (** XOR-reduction (parity), width 1 *)

type binop =
  | And
  | Or
  | Xor
  | Xnor
  | Add        (** modulo 2^width *)
  | Sub
  | Eq         (** width 1 *)
  | Ne         (** width 1 *)
  | Lt         (** unsigned, width 1 *)
  | Concat     (** left operand is the high part *)

type t =
  | Const of Bitvec.t
  | Var of string
  | Unop of unop * t
  | Binop of binop * t * t
  | Mux of t * t * t  (** [Mux (sel, t, e)]: [t] when 1-bit [sel] is high *)
  | Slice of t * int * int  (** [Slice (e, hi, lo)], bits [lo..hi] *)

(** {1 Convenience constructors} *)

val const : Bitvec.t -> t
val of_int : width:int -> int -> t
val var : string -> t
val tru : t
val fls : t
val ( !: ) : t -> t
(** Bitwise not. *)

val ( &: ) : t -> t -> t
val ( |: ) : t -> t -> t
val ( ^: ) : t -> t -> t
val ( +: ) : t -> t -> t
val ( -: ) : t -> t -> t
val ( ==: ) : t -> t -> t
val ( <>: ) : t -> t -> t
val ( <: ) : t -> t -> t
val mux : t -> t -> t -> t
val concat : t -> t -> t
val concat_list : t list -> t
(** [concat_list [hi; ...; lo]]; raises [Invalid_argument] on []. *)

val slice : t -> hi:int -> lo:int -> t
val bit : t -> int -> t
val red_xor : t -> t
val red_or : t -> t
val red_and : t -> t

val odd_parity_ok : t -> t
(** [odd_parity_ok e] is the 1-bit check that [e] carries odd parity — the
    legality predicate for all parity-protected values in the paper. *)

(** {1 Queries} *)

val width : env:(string -> int) -> t -> int
(** Inferred width. Raises [Invalid_argument] on ill-formed expressions
    (operand width mismatch, bad slice, non-1-bit mux select). *)

val eval : env:(string -> Bitvec.t) -> t -> Bitvec.t
(** Evaluate under a signal assignment. Raises like {!width} on ill-formed
    expressions. *)

val support : t -> string list
(** Signal names referenced, sorted, without duplicates. *)

val subst : (string -> t option) -> t -> t
(** [subst f e] replaces each [Var x] by [f x] when it is [Some _]. *)

val rename : (string -> string) -> t -> t

val simplify : env:(string -> int) -> t -> t
(** Structural simplification: slices of concatenations and of nested slices
    are resolved, full-width slices dropped, constant slices folded, and
    muxes with constant selects collapsed. [env] supplies signal widths.
    Semantics are preserved; the point is to shrink an expression's support
    (e.g. [HE[3]] where [HE] is a concatenation reduces to the driver of
    that one bit), which sharpens cone-of-influence reduction. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
