type flat_reg = {
  name : string;
  width : int;
  reset_value : Bitvec.t;
  next : Expr.t;
  cls : Mdl.reg_class;
  parity_protected : bool;
}

type t = {
  top : string;
  inputs : (string * int) list;
  outputs : (string * int) list;
  wires : (string * int) list;
  assigns : (string * Expr.t) list;
  regs : flat_reg list;
}

exception Combinational_loop of string list

let signals nl =
  nl.inputs @ nl.outputs @ nl.wires
  @ List.map (fun r -> (r.name, r.width)) nl.regs

let signal_width nl name =
  match List.assoc_opt name (signals nl) with
  | Some w -> w
  | None -> raise Not_found

(* Kahn's algorithm over the "assign a reads b" graph. Registers and primary
   inputs break the cycle: a register's next-state expression may read any
   net without creating a combinational dependency. *)
let levelize nl =
  let tbl = Hashtbl.create 97 in
  List.iter (fun (lhs, rhs) -> Hashtbl.replace tbl lhs rhs) nl.assigns;
  let is_source name = not (Hashtbl.mem tbl name) in
  let state = Hashtbl.create 97 in
  (* state: 0 = unvisited, 1 = in progress, 2 = done *)
  let order = ref [] in
  let rec visit stack name =
    match Hashtbl.find_opt state name with
    | Some 2 -> ()
    | Some 1 -> raise (Combinational_loop (List.rev (name :: stack)))
    | Some _ | None ->
      if is_source name then Hashtbl.replace state name 2
      else begin
        Hashtbl.replace state name 1;
        let rhs = Hashtbl.find tbl name in
        List.iter (visit (name :: stack)) (Expr.support rhs);
        Hashtbl.replace state name 2;
        order := (name, rhs) :: !order
      end
  in
  List.iter (fun (lhs, _) -> visit [] lhs) nl.assigns;
  { nl with assigns = List.rev !order }

let validate nl =
  let sigs = signals nl in
  let widths = Hashtbl.create 97 in
  let dup = ref None in
  List.iter
    (fun (name, w) ->
      if Hashtbl.mem widths name then dup := Some name
      else Hashtbl.replace widths name w)
    sigs;
  match !dup with
  | Some name -> Error (Printf.sprintf "signal %s declared twice" name)
  | None ->
    let driven = Hashtbl.create 97 in
    List.iter (fun (r : flat_reg) -> Hashtbl.replace driven r.name ()) nl.regs;
    List.iter (fun (name, _) -> Hashtbl.replace driven name ()) nl.inputs;
    let env name =
      match Hashtbl.find_opt widths name with
      | Some w -> w
      | None -> invalid_arg (Printf.sprintf "undeclared signal %s" name)
    in
    let check_expr what lhs_width e =
      match Expr.width ~env e with
      | w ->
        if w <> lhs_width then
          Error (Printf.sprintf "%s: width %d, expression width %d" what
                   lhs_width w)
        else Ok ()
      | exception Invalid_argument msg -> Error (what ^ ": " ^ msg)
    in
    let multi = ref None in
    let rec check_assigns = function
      | [] -> Ok ()
      | (lhs, rhs) :: rest -> (
        if Hashtbl.mem driven lhs then begin
          multi := Some lhs;
          Error (Printf.sprintf "signal %s multiply driven" lhs)
        end
        else begin
          Hashtbl.replace driven lhs ();
          match Hashtbl.find_opt widths lhs with
          | None -> Error (Printf.sprintf "assign to undeclared signal %s" lhs)
          | Some w -> (
            match check_expr ("assign " ^ lhs) w rhs with
            | Error _ as e -> e
            | Ok () -> check_assigns rest)
        end)
    in
    let check_regs () =
      List.fold_left
        (fun acc (r : flat_reg) ->
          match acc with
          | Error _ -> acc
          | Ok () -> check_expr ("reg " ^ r.name) r.width r.next)
        (Ok ()) nl.regs
    in
    let check_outputs () =
      List.fold_left
        (fun acc (name, _) ->
          match acc with
          | Error _ -> acc
          | Ok () ->
            if Hashtbl.mem driven name then Ok ()
            else Error (Printf.sprintf "output %s undriven" name))
        (Ok ()) nl.outputs
    in
    let ( >>= ) r f = match r with Error _ as e -> e | Ok () -> f () in
    check_assigns nl.assigns >>= check_regs >>= check_outputs

let stats nl =
  (List.length nl.inputs + List.length nl.outputs, List.length nl.regs,
   List.length nl.assigns)

let state_bits nl = List.fold_left (fun acc r -> acc + r.width) 0 nl.regs

let pp_summary ppf nl =
  let io, regs, assigns = stats nl in
  Format.fprintf ppf "netlist %s: %d I/O, %d regs (%d state bits), %d assigns"
    nl.top io regs (state_bits nl) assigns
