exception Error of string * int

(* ---- lexer ---- *)

type token =
  | ID of string
  | INT of int
  | BIN of int * string  (* width, digits *)
  | LP | RP | LB | RB | LC | RC
  | SEMI | COMMA | DOT | COLON | QUESTION | AT
  | EQ | LE_ARROW  (* = and <= *)
  | TILDE | AMP | BAR | CARET | TILDE_CARET | PLUS | MINUS
  | EQEQ | NEQ | LT
  | K_MODULE | K_ENDMODULE | K_INPUT | K_OUTPUT | K_WIRE | K_REG
  | K_ASSIGN | K_ALWAYS | K_POSEDGE | K_OR | K_IF | K_ELSE
  | EOF

type lexer = { src : string; mutable off : int; mutable tok : token;
               mutable pos : int }

let keyword = function
  | "module" -> Some K_MODULE
  | "endmodule" -> Some K_ENDMODULE
  | "input" -> Some K_INPUT
  | "output" -> Some K_OUTPUT
  | "wire" -> Some K_WIRE
  | "reg" -> Some K_REG
  | "assign" -> Some K_ASSIGN
  | "always" -> Some K_ALWAYS
  | "posedge" -> Some K_POSEDGE
  | "or" -> Some K_OR
  | "if" -> Some K_IF
  | "else" -> Some K_ELSE
  | _ -> None

let is_id_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_id_char c = is_id_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let rec scan lx =
  let n = String.length lx.src in
  if lx.off >= n then EOF
  else
    let c = lx.src.[lx.off] in
    match c with
    | ' ' | '\t' | '\n' | '\r' ->
      lx.off <- lx.off + 1;
      scan lx
    | '/' when lx.off + 1 < n && lx.src.[lx.off + 1] = '/' ->
      let rec eol i = if i >= n || lx.src.[i] = '\n' then i else eol (i + 1) in
      lx.off <- eol lx.off;
      scan lx
    | '/' when lx.off + 1 < n && lx.src.[lx.off + 1] = '*' ->
      let rec close i =
        if i + 1 >= n then raise (Error ("unterminated comment", lx.off))
        else if lx.src.[i] = '*' && lx.src.[i + 1] = '/' then i + 2
        else close (i + 1)
      in
      lx.off <- close (lx.off + 2);
      scan lx
    | '(' -> lx.off <- lx.off + 1; LP
    | ')' -> lx.off <- lx.off + 1; RP
    | '[' -> lx.off <- lx.off + 1; LB
    | ']' -> lx.off <- lx.off + 1; RB
    | '{' -> lx.off <- lx.off + 1; LC
    | '}' -> lx.off <- lx.off + 1; RC
    | ';' -> lx.off <- lx.off + 1; SEMI
    | ',' -> lx.off <- lx.off + 1; COMMA
    | '.' -> lx.off <- lx.off + 1; DOT
    | ':' -> lx.off <- lx.off + 1; COLON
    | '?' -> lx.off <- lx.off + 1; QUESTION
    | '@' -> lx.off <- lx.off + 1; AT
    | '+' -> lx.off <- lx.off + 1; PLUS
    | '-' -> lx.off <- lx.off + 1; MINUS
    | '&' -> lx.off <- lx.off + 1; AMP
    | '|' -> lx.off <- lx.off + 1; BAR
    | '^' -> lx.off <- lx.off + 1; CARET
    | '~' ->
      if lx.off + 1 < n && lx.src.[lx.off + 1] = '^' then begin
        lx.off <- lx.off + 2;
        TILDE_CARET
      end
      else begin
        lx.off <- lx.off + 1;
        TILDE
      end
    | '=' ->
      if lx.off + 1 < n && lx.src.[lx.off + 1] = '=' then begin
        lx.off <- lx.off + 2;
        EQEQ
      end
      else begin
        lx.off <- lx.off + 1;
        EQ
      end
    | '!' ->
      if lx.off + 1 < n && lx.src.[lx.off + 1] = '=' then begin
        lx.off <- lx.off + 2;
        NEQ
      end
      else raise (Error ("unexpected '!'", lx.off))
    | '<' ->
      if lx.off + 1 < n && lx.src.[lx.off + 1] = '=' then begin
        lx.off <- lx.off + 2;
        LE_ARROW
      end
      else begin
        lx.off <- lx.off + 1;
        LT
      end
    | c when is_digit c ->
      let start = lx.off in
      let rec digits i = if i < n && is_digit lx.src.[i] then digits (i + 1) else i in
      let stop = digits lx.off in
      let v = int_of_string (String.sub lx.src start (stop - start)) in
      if stop < n && lx.src.[stop] = '\'' then begin
        if stop + 1 >= n || Char.lowercase_ascii lx.src.[stop + 1] <> 'b' then
          raise (Error ("only binary sized constants supported", stop));
        let bstart = stop + 2 in
        let rec bits i =
          if i < n && (lx.src.[i] = '0' || lx.src.[i] = '1' || lx.src.[i] = '_')
          then bits (i + 1)
          else i
        in
        let bstop = bits bstart in
        if bstop = bstart then raise (Error ("empty binary constant", bstart));
        lx.off <- bstop;
        BIN (v, String.sub lx.src bstart (bstop - bstart))
      end
      else begin
        lx.off <- stop;
        INT v
      end
    | c when is_id_start c ->
      let start = lx.off in
      let rec chars i = if i < n && is_id_char lx.src.[i] then chars (i + 1) else i in
      let stop = chars lx.off in
      lx.off <- stop;
      let word = String.sub lx.src start (stop - start) in
      (match keyword word with Some k -> k | None -> ID word)
    | c -> raise (Error (Printf.sprintf "unexpected character %C" c, lx.off))

let advance lx =
  lx.pos <- lx.off;
  lx.tok <- scan lx

let make src =
  let lx = { src; off = 0; tok = EOF; pos = 0 } in
  advance lx;
  lx

let next lx =
  let t = lx.tok in
  advance lx;
  t

let fail lx msg = raise (Error (msg, lx.pos))

let expect lx tok what = if next lx <> tok then fail lx ("expected " ^ what)

let ident lx =
  match next lx with ID s -> s | _ -> fail lx "expected identifier"

(* ---- expressions ---- *)

let bitvec_of lx w digits =
  let bv = Bitvec.of_string digits in
  if Bitvec.width bv <> w then
    fail lx (Printf.sprintf "constant width %d vs %d digits" w (Bitvec.width bv));
  bv

let rec expr lx = ternary lx

and ternary lx =
  let c = or_level lx in
  if lx.tok = QUESTION then begin
    advance lx;
    let t = ternary lx in
    expect lx COLON ":";
    let e = ternary lx in
    Expr.Mux (c, t, e)
  end
  else c

and or_level lx =
  let rec loop acc =
    if lx.tok = BAR then begin
      advance lx;
      loop (Expr.Binop (Expr.Or, acc, xor_level lx))
    end
    else acc
  in
  loop (xor_level lx)

and xor_level lx =
  let rec loop acc =
    match lx.tok with
    | CARET ->
      advance lx;
      loop (Expr.Binop (Expr.Xor, acc, and_level lx))
    | TILDE_CARET ->
      advance lx;
      loop (Expr.Binop (Expr.Xnor, acc, and_level lx))
    | _ -> acc
  in
  loop (and_level lx)

and and_level lx =
  let rec loop acc =
    if lx.tok = AMP then begin
      advance lx;
      loop (Expr.Binop (Expr.And, acc, cmp_level lx))
    end
    else acc
  in
  loop (cmp_level lx)

and cmp_level lx =
  let lhs = add_level lx in
  match lx.tok with
  | EQEQ ->
    advance lx;
    Expr.Binop (Expr.Eq, lhs, add_level lx)
  | NEQ ->
    advance lx;
    Expr.Binop (Expr.Ne, lhs, add_level lx)
  | LT ->
    advance lx;
    Expr.Binop (Expr.Lt, lhs, add_level lx)
  | _ -> lhs

and add_level lx =
  let rec loop acc =
    match lx.tok with
    | PLUS ->
      advance lx;
      loop (Expr.Binop (Expr.Add, acc, unary lx))
    | MINUS ->
      advance lx;
      loop (Expr.Binop (Expr.Sub, acc, unary lx))
    | _ -> acc
  in
  loop (unary lx)

and unary lx =
  match lx.tok with
  | TILDE ->
    advance lx;
    Expr.Unop (Expr.Not, unary lx)
  | CARET ->
    advance lx;
    Expr.Unop (Expr.Red_xor, unary lx)
  | AMP ->
    advance lx;
    Expr.Unop (Expr.Red_and, unary lx)
  | BAR ->
    advance lx;
    Expr.Unop (Expr.Red_or, unary lx)
  | _ -> postfix lx

and postfix lx =
  let rec loop acc =
    if lx.tok = LB then begin
      advance lx;
      let hi = match next lx with INT n -> n | _ -> fail lx "bit index" in
      let lo =
        if lx.tok = COLON then begin
          advance lx;
          match next lx with INT n -> n | _ -> fail lx "bit index"
        end
        else hi
      in
      expect lx RB "]";
      loop (Expr.Slice (acc, hi, lo))
    end
    else acc
  in
  loop (primary lx)

and primary lx =
  match next lx with
  | ID s -> Expr.Var s
  | BIN (w, digits) -> Expr.Const (bitvec_of lx w digits)
  | LP ->
    let e = expr lx in
    expect lx RP ")";
    e
  | LC ->
    (* n-ary concatenation, leftmost part most significant *)
    let first = expr lx in
    let rec parts acc =
      if lx.tok = COMMA then begin
        advance lx;
        parts (expr lx :: acc)
      end
      else begin
        expect lx RC "}";
        List.rev acc
      end
    in
    let all = parts [ first ] in
    (match all with
     | [] -> fail lx "empty concatenation"
     | hd :: tl ->
       List.fold_left (fun acc e -> Expr.Binop (Expr.Concat, acc, e)) hd tl)
  | INT _ -> fail lx "bare integers are only allowed as indices"
  | _ -> fail lx "expected expression"

(* ---- declarations and statements ---- *)

let range lx =
  if lx.tok = LB then begin
    advance lx;
    let hi = match next lx with INT n -> n | _ -> fail lx "range bound" in
    expect lx COLON ":";
    (match next lx with INT 0 -> () | _ -> fail lx "ranges must end at 0");
    expect lx RB "]";
    hi + 1
  end
  else 1

type raw_reg = { rr_name : string; rr_width : int }

let module_def lx =
  expect lx K_MODULE "module";
  let name = ident lx in
  expect lx LP "(";
  (* header port list (names repeated in declarations) *)
  (if lx.tok <> RP then
     let rec skip () =
       ignore (ident lx);
       if lx.tok = COMMA then begin
         advance lx;
         skip ()
       end
     in
     skip ());
  expect lx RP ")";
  expect lx SEMI ";";
  let m = ref (Mdl.create name) in
  let raw_regs : raw_reg list ref = ref [] in
  let reg_bodies : (string * (Bitvec.t * Expr.t)) list ref = ref [] in
  let inst_count = ref 0 in
  let rec items () =
    match lx.tok with
    | K_ENDMODULE ->
      advance lx
    | K_INPUT ->
      advance lx;
      let w = range lx in
      let n = ident lx in
      expect lx SEMI ";";
      m := Mdl.add_input !m n w;
      items ()
    | K_OUTPUT ->
      advance lx;
      let w = range lx in
      let n = ident lx in
      expect lx SEMI ";";
      m := Mdl.add_output !m n w;
      items ()
    | K_WIRE ->
      advance lx;
      let w = range lx in
      let n = ident lx in
      expect lx SEMI ";";
      m := Mdl.add_wire !m n w;
      items ()
    | K_REG ->
      advance lx;
      let w = range lx in
      let n = ident lx in
      expect lx SEMI ";";
      raw_regs := { rr_name = n; rr_width = w } :: !raw_regs;
      items ()
    | K_ASSIGN ->
      advance lx;
      let lhs = ident lx in
      expect lx EQ "=";
      let rhs = expr lx in
      expect lx SEMI ";";
      m := Mdl.add_assign !m lhs rhs;
      items ()
    | K_ALWAYS ->
      advance lx;
      (* always @(posedge CK or posedge RESET) if (RESET) r <= C; else r <= e; *)
      expect lx AT "@";
      expect lx LP "(";
      expect lx K_POSEDGE "posedge";
      ignore (ident lx);
      if lx.tok = K_OR then begin
        advance lx;
        expect lx K_POSEDGE "posedge";
        ignore (ident lx)
      end;
      expect lx RP ")";
      expect lx K_IF "if";
      expect lx LP "(";
      ignore (ident lx);
      expect lx RP ")";
      let r1 = ident lx in
      expect lx LE_ARROW "<=";
      let reset_value =
        match next lx with
        | BIN (w, digits) -> bitvec_of lx w digits
        | _ -> fail lx "reset value must be a sized constant"
      in
      expect lx SEMI ";";
      expect lx K_ELSE "else";
      let r2 = ident lx in
      if r1 <> r2 then fail lx "always block must target one register";
      expect lx LE_ARROW "<=";
      let next_e = expr lx in
      expect lx SEMI ";";
      reg_bodies := (r1, (reset_value, next_e)) :: !reg_bodies;
      items ()
    | ID child ->
      advance lx;
      incr inst_count;
      let inst_name = ident lx in
      expect lx LP "(";
      let rec conns acc =
        if lx.tok = RP then begin
          advance lx;
          List.rev acc
        end
        else begin
          expect lx DOT ".";
          let formal = ident lx in
          expect lx LP "(";
          let actual =
            match expr lx with
            | Expr.Var n -> Mdl.Net n
            | e -> Mdl.Expr e
          in
          expect lx RP ")";
          if lx.tok = COMMA then advance lx;
          conns ((formal, actual) :: acc)
        end
      in
      let connections = conns [] in
      expect lx SEMI ";";
      m := Mdl.add_instance !m inst_name ~of_module:child connections;
      items ()
    | _ -> fail lx "expected a declaration, assign, always block or instance"
  in
  items ();
  (* attach register bodies *)
  List.iter
    (fun { rr_name; rr_width } ->
      match List.assoc_opt rr_name !reg_bodies with
      | Some (reset, next_e) ->
        m := Mdl.add_reg ~reset !m rr_name rr_width next_e
      | None ->
        fail lx (Printf.sprintf "register %s has no always block" rr_name))
    (List.rev !raw_regs);
  !m

let parse src =
  let lx = make src in
  let rec loop acc =
    if lx.tok = EOF then List.rev acc else loop (module_def lx :: acc)
  in
  loop []

let parse_design src = Design.of_modules (parse src)

let annotate_like ~reference m =
  Mdl.map_regs
    (fun (r : Mdl.reg) ->
      match Mdl.find_reg reference r.Mdl.reg_name with
      | Some ref_reg ->
        { r with
          Mdl.reg_class = ref_reg.Mdl.reg_class;
          parity_protected = ref_reg.Mdl.parity_protected }
      | None -> r)
    m
