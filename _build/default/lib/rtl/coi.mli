(** Cone-of-influence reduction: restrict a netlist to the logic that can
    affect a set of root signals. Registers and assigns outside the
    transitive fan-in are dropped; the state space seen by the model checker
    shrinks accordingly. This is what makes the paper's divide-and-conquer
    property partitioning (Figure 7) pay off: each sub-property has a
    smaller cone. *)

val reduce : Netlist.t -> roots:string list -> Netlist.t
(** Keeps the named root signals, everything in their transitive fan-in
    (through assigns and register next-state functions), and all primary
    inputs feeding that logic. Outputs outside the cone are dropped from the
    interface. Raises [Not_found] if a root is undeclared. *)

val cone_size : Netlist.t -> roots:string list -> int * int
(** [(registers, assigns)] inside the cone — a cheap size estimate without
    building the reduced netlist. *)
