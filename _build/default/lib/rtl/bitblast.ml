let const bv = Array.init (Bitvec.width bv) (fun i -> Bexpr.of_bool (Bitvec.get bv i))

let check_same_width what a b =
  if Array.length a <> Array.length b then
    invalid_arg (Printf.sprintf "Bitblast: %s width mismatch (%d vs %d)" what
                   (Array.length a) (Array.length b))

let adder a b carry0 =
  check_same_width "add" a b;
  let w = Array.length a in
  let sum = Array.make w Bexpr.fls in
  let carry = ref carry0 in
  for i = 0 to w - 1 do
    let ab = Bexpr.xor a.(i) b.(i) in
    sum.(i) <- Bexpr.xor ab !carry;
    carry := Bexpr.or_ (Bexpr.and_ a.(i) b.(i)) (Bexpr.and_ !carry ab)
  done;
  (sum, !carry)

let less_than a b =
  check_same_width "lt" a b;
  (* borrow-out of a - b computed LSB-first *)
  let borrow = ref Bexpr.fls in
  for i = 0 to Array.length a - 1 do
    let na = Bexpr.not_ a.(i) in
    borrow :=
      Bexpr.or_
        (Bexpr.and_ na b.(i))
        (Bexpr.and_ !borrow (Bexpr.xnor a.(i) b.(i)))
  done;
  !borrow

let equality a b =
  check_same_width "eq" a b;
  let acc = ref Bexpr.tru in
  for i = 0 to Array.length a - 1 do
    acc := Bexpr.and_ !acc (Bexpr.xnor a.(i) b.(i))
  done;
  !acc

(* balanced reduction tree, as a technology mapper would build it *)
let rec balanced op = function
  | [] -> invalid_arg "Bitblast.balanced: empty"
  | [ x ] -> x
  | xs ->
    let rec pairs = function
      | [] -> []
      | [ x ] -> [ x ]
      | a :: b :: rest -> op a b :: pairs rest
    in
    balanced op (pairs xs)

let expr ~env e =
  let rec go = function
    | Expr.Const bv -> const bv
    | Expr.Var x -> env x
    | Expr.Unop (Expr.Not, e) -> Array.map Bexpr.not_ (go e)
    | Expr.Unop (Expr.Red_and, e) ->
      [| balanced Bexpr.and_ (Array.to_list (go e)) |]
    | Expr.Unop (Expr.Red_or, e) ->
      [| balanced Bexpr.or_ (Array.to_list (go e)) |]
    | Expr.Unop (Expr.Red_xor, e) ->
      [| balanced Bexpr.xor (Array.to_list (go e)) |]
    | Expr.Binop (op, a, b) -> binop op (go a) (go b)
    | Expr.Mux (s, t, e) ->
      let sb = go s in
      if Array.length sb <> 1 then
        invalid_arg "Bitblast: mux select must be 1 bit";
      let tb = go t and eb = go e in
      check_same_width "mux" tb eb;
      Array.map2 (fun ti ei -> Bexpr.ite sb.(0) ti ei) tb eb
    | Expr.Slice (e, hi, lo) ->
      let bits = go e in
      if lo < 0 || hi >= Array.length bits || hi < lo then
        invalid_arg "Bitblast: slice out of range";
      Array.sub bits lo (hi - lo + 1)
  and binop op a b =
    match op with
    | Expr.And ->
      check_same_width "and" a b;
      Array.map2 Bexpr.and_ a b
    | Expr.Or ->
      check_same_width "or" a b;
      Array.map2 Bexpr.or_ a b
    | Expr.Xor ->
      check_same_width "xor" a b;
      Array.map2 Bexpr.xor a b
    | Expr.Xnor ->
      check_same_width "xnor" a b;
      Array.map2 Bexpr.xnor a b
    | Expr.Add -> fst (adder a b Bexpr.fls)
    | Expr.Sub -> fst (adder a (Array.map Bexpr.not_ b) Bexpr.tru)
    | Expr.Eq -> [| equality a b |]
    | Expr.Ne -> [| Bexpr.not_ (equality a b) |]
    | Expr.Lt -> [| less_than a b |]
    | Expr.Concat -> Array.append b a
  in
  go e

type flat = {
  var_of_bit : string -> int -> int;
  bit_of_var : int -> string * int;
  input_vars : (string * int array) list;
  reg_vars : (string * int array) list;
  fn : string -> Bexpr.t array;
  next_fn : (string * Bexpr.t array) list;
  reset_of : string -> Bitvec.t;
}

let flatten (nl : Netlist.t) =
  let var_tbl : (string * int, int) Hashtbl.t = Hashtbl.create 97 in
  let rev_tbl : (int, string * int) Hashtbl.t = Hashtbl.create 97 in
  let next_var = ref 0 in
  let alloc name width =
    Array.init width (fun i ->
        let v = !next_var in
        incr next_var;
        Hashtbl.replace var_tbl (name, i) v;
        Hashtbl.replace rev_tbl v (name, i);
        v)
  in
  let reg_vars =
    List.map (fun (r : Netlist.flat_reg) -> (r.name, alloc r.name r.width))
      nl.regs
  in
  let input_vars =
    List.map (fun (name, w) -> (name, alloc name w)) nl.inputs
  in
  let fns : (string, Bexpr.t array) Hashtbl.t = Hashtbl.create 97 in
  let install (name, vars) =
    Hashtbl.replace fns name (Array.map Bexpr.var vars)
  in
  List.iter install reg_vars;
  List.iter install input_vars;
  let env name =
    match Hashtbl.find_opt fns name with
    | Some bits -> bits
    | None ->
      invalid_arg (Printf.sprintf "Bitblast.flatten: %s read before driven" name)
  in
  List.iter (fun (lhs, rhs) -> Hashtbl.replace fns lhs (expr ~env rhs))
    nl.assigns;
  let next_fn =
    List.map (fun (r : Netlist.flat_reg) -> (r.name, expr ~env r.next)) nl.regs
  in
  let var_of_bit name i =
    match Hashtbl.find_opt var_tbl (name, i) with
    | Some v -> v
    | None ->
      invalid_arg
        (Printf.sprintf "Bitblast.flatten: %s[%d] is not a state/input bit"
           name i)
  in
  let bit_of_var v =
    match Hashtbl.find_opt rev_tbl v with
    | Some b -> b
    | None -> invalid_arg (Printf.sprintf "Bitblast.flatten: unknown var %d" v)
  in
  let resets =
    List.map (fun (r : Netlist.flat_reg) -> (r.name, r.reset_value)) nl.regs
  in
  let reset_of name =
    match List.assoc_opt name resets with
    | Some v -> v
    | None ->
      invalid_arg (Printf.sprintf "Bitblast.flatten: %s is not a register" name)
  in
  { var_of_bit; bit_of_var; input_vars; reg_vars; fn = env; next_fn; reset_of }
