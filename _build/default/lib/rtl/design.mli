(** A design: a set of module definitions closed under instantiation. *)

type t

val empty : t
val add : t -> Mdl.t -> t
(** Raises [Invalid_argument] if a module of the same name exists. *)

val replace : t -> Mdl.t -> t
val find : t -> string -> Mdl.t option
val find_exn : t -> string -> Mdl.t
val modules : t -> Mdl.t list
val leaf_modules : t -> Mdl.t list

val of_modules : Mdl.t list -> t

val check_closed : t -> (unit, string) result
(** Every instantiated module is defined and the hierarchy is acyclic. *)

val instance_tree : t -> root:string -> (string * string) list
(** [(hierarchical path, module name)] pairs for every instance reachable
    from [root], including the root itself at path [""]. *)

val submodule_count : t -> root:string -> int
(** Number of instances (at any depth) below [root] — the paper's
    "# of Sub" column in Table 2. *)
