let range_of_width w = if w = 1 then "" else Printf.sprintf "[%d:0] " (w - 1)

let rec pp_expr ppf (e : Expr.t) =
  match e with
  | Expr.Const bv ->
    Format.fprintf ppf "%d'b%s" (Bitvec.width bv) (Bitvec.to_string bv)
  | Expr.Var x -> Format.pp_print_string ppf x
  | Expr.Unop (op, e) ->
    let sym =
      match op with
      | Expr.Not -> "~"
      | Expr.Red_and -> "&"
      | Expr.Red_or -> "|"
      | Expr.Red_xor -> "^"
    in
    Format.fprintf ppf "%s(%a)" sym pp_expr e
  | Expr.Binop (Expr.Concat, a, b) ->
    Format.fprintf ppf "{%a, %a}" pp_expr a pp_expr b
  | Expr.Binop (op, a, b) ->
    let sym =
      match op with
      | Expr.And -> "&"
      | Expr.Or -> "|"
      | Expr.Xor -> "^"
      | Expr.Xnor -> "~^"
      | Expr.Add -> "+"
      | Expr.Sub -> "-"
      | Expr.Eq -> "=="
      | Expr.Ne -> "!="
      | Expr.Lt -> "<"
      | Expr.Concat -> assert false
    in
    Format.fprintf ppf "(%a %s %a)" pp_expr a sym pp_expr b
  | Expr.Mux (s, t, e) ->
    Format.fprintf ppf "(%a ? %a : %a)" pp_expr s pp_expr t pp_expr e
  | Expr.Slice (Expr.Var x, hi, lo) ->
    if hi = lo then Format.fprintf ppf "%s[%d]" x lo
    else Format.fprintf ppf "%s[%d:%d]" x hi lo
  | Expr.Slice (e, hi, lo) ->
    if hi = lo then Format.fprintf ppf "(%a)[%d]" pp_expr e lo
    else Format.fprintf ppf "(%a)[%d:%d]" pp_expr e hi lo

let pp_actual ppf = function
  | Mdl.Expr e -> pp_expr ppf e
  | Mdl.Net n -> Format.pp_print_string ppf n

let pp_module ppf (m : Mdl.t) =
  let port_names =
    String.concat ", " (List.map (fun (p : Mdl.port) -> p.port_name) m.ports)
  in
  Format.fprintf ppf "module %s (%s);@." m.name port_names;
  List.iter
    (fun (p : Mdl.port) ->
      let dir = match p.dir with Mdl.Input -> "input" | Mdl.Output -> "output" in
      Format.fprintf ppf "  %s %s%s;@." dir (range_of_width p.port_width)
        p.port_name)
    m.ports;
  List.iter
    (fun (w, width) ->
      Format.fprintf ppf "  wire %s%s;@." (range_of_width width) w)
    m.wires;
  List.iter
    (fun (r : Mdl.reg) ->
      Format.fprintf ppf "  reg  %s%s;@." (range_of_width r.reg_width)
        r.reg_name)
    m.regs;
  List.iter
    (fun (a : Mdl.assign) ->
      Format.fprintf ppf "  assign %s = %a;@." a.lhs pp_expr a.rhs)
    m.assigns;
  List.iter
    (fun (r : Mdl.reg) ->
      Format.fprintf ppf "  always @@(posedge CK or posedge RESET)@.";
      Format.fprintf ppf "    if (RESET) %s <= %d'b%s;@." r.reg_name
        r.reg_width
        (Bitvec.to_string r.reset_value);
      Format.fprintf ppf "    else       %s <= %a;@." r.reg_name pp_expr r.next)
    m.regs;
  List.iter
    (fun (i : Mdl.instance) ->
      Format.fprintf ppf "  %s %s (@." i.of_module i.inst_name;
      let n = List.length i.connections in
      List.iteri
        (fun k (formal, actual) ->
          Format.fprintf ppf "    .%s (%a)%s@." formal pp_actual actual
            (if k = n - 1 then "" else ","))
        i.connections;
      Format.fprintf ppf "  );@.")
    m.instances;
  Format.fprintf ppf "endmodule@."

let pp_design ppf d =
  List.iter (fun m -> Format.fprintf ppf "%a@." pp_module m) (Design.modules d)

let module_to_string m = Format.asprintf "%a" pp_module m
let design_to_string d = Format.asprintf "%a" pp_design d
