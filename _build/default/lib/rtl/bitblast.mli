(** Bit-blasting word-level expressions and netlists to {!Bexpr} DAGs. *)

val expr : env:(string -> Bexpr.t array) -> Expr.t -> Bexpr.t array
(** [expr ~env e] expands [e] to one boolean function per bit, index 0 being
    the LSB. [env] supplies the bit functions of each referenced signal.
    Raises [Invalid_argument] on width mismatches (same rules as
    {!Expr.width}). *)

val const : Bitvec.t -> Bexpr.t array

type flat = {
  var_of_bit : string -> int -> int;
      (** variable id of bit [i] of a primary input or register *)
  bit_of_var : int -> string * int;
  input_vars : (string * int array) list;
  reg_vars : (string * int array) list;
  fn : string -> Bexpr.t array;
      (** boolean functions of any declared signal, expressed purely over
          input and register variables (combinational logic fully inlined) *)
  next_fn : (string * Bexpr.t array) list;
      (** next-state function of each register *)
  reset_of : string -> Bitvec.t;
}

val flatten : Netlist.t -> flat
(** [flatten nl] walks the levelized assigns of [nl], inlining all
    combinational logic. Variable ids are assigned densely: register bits
    first (in declaration order), then input bits — the ordering used by the
    symbolic model checker. *)
