type dir = Input | Output

type port = { port_name : string; dir : dir; port_width : int }

type reg_class = Fsm | Counter | Datapath | Plain

type reg = {
  reg_name : string;
  reg_width : int;
  reset_value : Bitvec.t;
  next : Expr.t;
  reg_class : reg_class;
  parity_protected : bool;
}

type assign = { lhs : string; rhs : Expr.t }

type actual = Expr of Expr.t | Net of string

type instance = {
  inst_name : string;
  of_module : string;
  connections : (string * actual) list;
}

type t = {
  name : string;
  ports : port list;
  wires : (string * int) list;
  assigns : assign list;
  regs : reg list;
  instances : instance list;
  attrs : (string * string) list;
}

let create name =
  { name; ports = []; wires = []; assigns = []; regs = []; instances = [];
    attrs = [] }

let declared m name =
  List.exists (fun p -> p.port_name = name) m.ports
  || List.mem_assoc name m.wires
  || List.exists (fun r -> r.reg_name = name) m.regs

let check_fresh m name =
  if declared m name then
    invalid_arg (Printf.sprintf "Mdl: %s already declared in %s" name m.name)

let add_port m name dir width =
  check_fresh m name;
  if width <= 0 then invalid_arg "Mdl: port width must be positive";
  { m with ports = m.ports @ [ { port_name = name; dir; port_width = width } ] }

let add_input m name width = add_port m name Input width
let add_output m name width = add_port m name Output width

let add_wire m name width =
  check_fresh m name;
  if width <= 0 then invalid_arg "Mdl: wire width must be positive";
  { m with wires = m.wires @ [ (name, width) ] }

let add_assign m lhs rhs = { m with assigns = m.assigns @ [ { lhs; rhs } ] }

let add_reg ?(cls = Plain) ?(parity_protected = false) ?reset m name width next =
  check_fresh m name;
  if width <= 0 then invalid_arg "Mdl: reg width must be positive";
  let reset_value =
    match reset with Some r -> r | None -> Bitvec.zero width
  in
  if Bitvec.width reset_value <> width then
    invalid_arg "Mdl: reset value width mismatch";
  let r =
    { reg_name = name; reg_width = width; reset_value; next;
      reg_class = cls; parity_protected }
  in
  { m with regs = m.regs @ [ r ] }

let add_instance m inst_name ~of_module connections =
  if List.exists (fun i -> i.inst_name = inst_name) m.instances then
    invalid_arg (Printf.sprintf "Mdl: instance %s already present" inst_name);
  { m with instances = m.instances @ [ { inst_name; of_module; connections } ] }

let add_attr m key value = { m with attrs = (key, value) :: m.attrs }
let attr m key = List.assoc_opt key m.attrs

let find_port m name = List.find_opt (fun p -> p.port_name = name) m.ports
let inputs m = List.filter (fun p -> p.dir = Input) m.ports
let outputs m = List.filter (fun p -> p.dir = Output) m.ports
let find_reg m name = List.find_opt (fun r -> r.reg_name = name) m.regs
let is_leaf m = m.instances = []

let declared_signals m =
  List.map (fun p -> (p.port_name, p.port_width)) m.ports
  @ m.wires
  @ List.map (fun r -> (r.reg_name, r.reg_width)) m.regs

let signal_width m name =
  match List.assoc_opt name (declared_signals m) with
  | Some w -> w
  | None -> raise Not_found

let map_regs f m = { m with regs = List.map f m.regs }

let map_exprs f m =
  let assigns = List.map (fun a -> { a with rhs = f a.rhs }) m.assigns in
  let regs = List.map (fun r -> { r with next = f r.next }) m.regs in
  let map_actual = function Expr e -> Expr (f e) | Net _ as a -> a in
  let instances =
    List.map
      (fun i ->
        { i with
          connections =
            List.map (fun (p, a) -> (p, map_actual a)) i.connections })
      m.instances
  in
  { m with assigns; regs; instances }
