type issue = { where : string; what : string }

let pp_issue ppf i = Format.fprintf ppf "%s: %s" i.where i.what

let check_module design (m : Mdl.t) =
  let issues = ref [] in
  let report what = issues := { where = m.name; what } :: !issues in
  let widths = Hashtbl.create 97 in
  List.iter
    (fun (name, w) ->
      if Hashtbl.mem widths name then
        report (Printf.sprintf "signal %s declared twice" name)
      else Hashtbl.replace widths name w)
    (Mdl.declared_signals m);
  let env name =
    match Hashtbl.find_opt widths name with
    | Some w -> w
    | None -> invalid_arg (Printf.sprintf "undeclared signal %s" name)
  in
  let expr_width what e =
    match Expr.width ~env e with
    | w -> Some w
    | exception Invalid_argument msg ->
      report (what ^ ": " ^ msg);
      None
  in
  let check_width what expected e =
    match expr_width what e with
    | Some w when w <> expected ->
      report
        (Printf.sprintf "%s: expected width %d, got %d" what expected w)
    | Some _ | None -> ()
  in
  (* Driver accounting: wires and outputs need exactly one driver; inputs
     must have none; registers are driven by their always block. *)
  let drivers = Hashtbl.create 97 in
  let count_driver name =
    let n = Option.value ~default:0 (Hashtbl.find_opt drivers name) in
    Hashtbl.replace drivers name (n + 1)
  in
  List.iter
    (fun (a : Mdl.assign) ->
      (match Hashtbl.find_opt widths a.lhs with
       | None -> report (Printf.sprintf "assign to undeclared signal %s" a.lhs)
       | Some w -> check_width (Printf.sprintf "assign %s" a.lhs) w a.rhs);
      (match Mdl.find_port m a.lhs with
       | Some { dir = Mdl.Input; _ } ->
         report (Printf.sprintf "input port %s driven by assign" a.lhs)
       | Some { dir = Mdl.Output; _ } | None -> ());
      (match Mdl.find_reg m a.lhs with
       | Some _ -> report (Printf.sprintf "register %s driven by assign" a.lhs)
       | None -> ());
      count_driver a.lhs)
    m.assigns;
  List.iter
    (fun (r : Mdl.reg) ->
      check_width (Printf.sprintf "reg %s next" r.reg_name) r.reg_width r.next)
    m.regs;
  let check_instance (i : Mdl.instance) =
    match Design.find design i.of_module with
    | None ->
      report (Printf.sprintf "instance %s of undefined module %s" i.inst_name
                i.of_module)
    | Some child ->
      List.iter
        (fun (formal, actual) ->
          match Mdl.find_port child formal with
          | None ->
            report
              (Printf.sprintf "instance %s: no port %s on module %s"
                 i.inst_name formal i.of_module)
          | Some p -> (
            match (p.dir, actual) with
            | Mdl.Input, Mdl.Expr e ->
              check_width
                (Printf.sprintf "instance %s port %s" i.inst_name formal)
                p.port_width e
            | Mdl.Input, Mdl.Net n | Mdl.Output, Mdl.Net n -> (
              match Hashtbl.find_opt widths n with
              | None ->
                report
                  (Printf.sprintf "instance %s port %s: undeclared net %s"
                     i.inst_name formal n)
              | Some w ->
                if w <> p.port_width then
                  report
                    (Printf.sprintf
                       "instance %s port %s: net %s width %d, port width %d"
                       i.inst_name formal n w p.port_width);
                if p.dir = Mdl.Output then count_driver n)
            | Mdl.Output, Mdl.Expr _ ->
              report
                (Printf.sprintf
                   "instance %s output port %s connected to expression"
                   i.inst_name formal)))
        i.connections;
      (* every child input must be connected *)
      List.iter
        (fun (p : Mdl.port) ->
          if p.dir = Mdl.Input
             && not (List.mem_assoc p.port_name i.connections)
          then
            report
              (Printf.sprintf "instance %s: input %s unconnected" i.inst_name
                 p.port_name))
        child.ports
  in
  List.iter check_instance m.instances;
  let require_single_driver name =
    match Option.value ~default:0 (Hashtbl.find_opt drivers name) with
    | 0 -> report (Printf.sprintf "signal %s undriven" name)
    | 1 -> ()
    | n -> report (Printf.sprintf "signal %s has %d drivers" name n)
  in
  List.iter (fun (w, _) -> require_single_driver w) m.wires;
  List.iter
    (fun (p : Mdl.port) ->
      if p.dir = Mdl.Output then require_single_driver p.port_name)
    m.ports;
  List.rev !issues

let check_design design =
  List.concat_map (check_module design) (Design.modules design)
