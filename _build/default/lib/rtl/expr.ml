type unop = Not | Red_and | Red_or | Red_xor
type binop = And | Or | Xor | Xnor | Add | Sub | Eq | Ne | Lt | Concat

type t =
  | Const of Bitvec.t
  | Var of string
  | Unop of unop * t
  | Binop of binop * t * t
  | Mux of t * t * t
  | Slice of t * int * int

let const b = Const b
let of_int ~width n = Const (Bitvec.of_int ~width n)
let var s = Var s
let tru = of_int ~width:1 1
let fls = of_int ~width:1 0
let ( !: ) e = Unop (Not, e)
let ( &: ) a b = Binop (And, a, b)
let ( |: ) a b = Binop (Or, a, b)
let ( ^: ) a b = Binop (Xor, a, b)
let ( +: ) a b = Binop (Add, a, b)
let ( -: ) a b = Binop (Sub, a, b)
let ( ==: ) a b = Binop (Eq, a, b)
let ( <>: ) a b = Binop (Ne, a, b)
let ( <: ) a b = Binop (Lt, a, b)
let mux s t e = Mux (s, t, e)
let concat hi lo = Binop (Concat, hi, lo)

let concat_list = function
  | [] -> invalid_arg "Expr.concat_list: empty"
  | e :: es -> List.fold_left concat e es

let slice e ~hi ~lo = Slice (e, hi, lo)
let bit e i = Slice (e, i, i)
let red_xor e = Unop (Red_xor, e)
let red_or e = Unop (Red_or, e)
let red_and e = Unop (Red_and, e)
let odd_parity_ok e = red_xor e

let width ~env e =
  let rec go = function
    | Const b -> Bitvec.width b
    | Var x -> env x
    | Unop (Not, e) -> go e
    | Unop ((Red_and | Red_or | Red_xor), e) ->
      let _ = go e in
      1
    | Binop ((And | Or | Xor | Xnor | Add | Sub), a, b) ->
      let wa = go a and wb = go b in
      if wa <> wb then
        invalid_arg
          (Printf.sprintf "Expr.width: operand width mismatch (%d vs %d)" wa wb);
      wa
    | Binop ((Eq | Ne | Lt), a, b) ->
      let wa = go a and wb = go b in
      if wa <> wb then invalid_arg "Expr.width: comparison width mismatch";
      1
    | Binop (Concat, a, b) -> go a + go b
    | Mux (s, t, e) ->
      if go s <> 1 then invalid_arg "Expr.width: mux select must be 1 bit";
      let wt = go t and we = go e in
      if wt <> we then invalid_arg "Expr.width: mux arm width mismatch";
      wt
    | Slice (e, hi, lo) ->
      let w = go e in
      if lo < 0 || hi >= w || hi < lo then
        invalid_arg "Expr.width: slice out of range";
      hi - lo + 1
  in
  go e

let eval ~env e =
  let rec go = function
    | Const b -> b
    | Var x -> env x
    | Unop (Not, e) -> Bitvec.lognot (go e)
    | Unop (Red_and, e) -> Bitvec.of_bool (Bitvec.red_and (go e))
    | Unop (Red_or, e) -> Bitvec.of_bool (Bitvec.red_or (go e))
    | Unop (Red_xor, e) -> Bitvec.of_bool (Bitvec.red_xor (go e))
    | Binop (And, a, b) -> Bitvec.logand (go a) (go b)
    | Binop (Or, a, b) -> Bitvec.logor (go a) (go b)
    | Binop (Xor, a, b) -> Bitvec.logxor (go a) (go b)
    | Binop (Xnor, a, b) -> Bitvec.lognot (Bitvec.logxor (go a) (go b))
    | Binop (Add, a, b) -> Bitvec.add (go a) (go b)
    | Binop (Sub, a, b) -> Bitvec.sub (go a) (go b)
    | Binop (Eq, a, b) -> Bitvec.of_bool (Bitvec.equal (go a) (go b))
    | Binop (Ne, a, b) -> Bitvec.of_bool (not (Bitvec.equal (go a) (go b)))
    | Binop (Lt, a, b) -> Bitvec.of_bool (Bitvec.compare (go a) (go b) < 0)
    | Binop (Concat, a, b) -> Bitvec.concat (go a) (go b)
    | Mux (s, t, e) -> if Bitvec.get (go s) 0 then go t else go e
    | Slice (e, hi, lo) -> Bitvec.slice (go e) ~hi ~lo
  in
  go e

module String_set = Set.Make (String)

let support e =
  let rec go acc = function
    | Const _ -> acc
    | Var x -> String_set.add x acc
    | Unop (_, e) -> go acc e
    | Binop (_, a, b) -> go (go acc a) b
    | Mux (s, t, e) -> go (go (go acc s) t) e
    | Slice (e, _, _) -> go acc e
  in
  String_set.elements (go String_set.empty e)

let rec subst f = function
  | Const _ as e -> e
  | Var x as e -> ( match f x with Some e' -> e' | None -> e)
  | Unop (op, e) -> Unop (op, subst f e)
  | Binop (op, a, b) -> Binop (op, subst f a, subst f b)
  | Mux (s, t, e) -> Mux (subst f s, subst f t, subst f e)
  | Slice (e, hi, lo) -> Slice (subst f e, hi, lo)

let rename f e = subst (fun x -> Some (Var (f x))) e

let simplify ~env e =
  let width_of e = width ~env e in
  let rec go e =
    match e with
    | Const _ | Var _ -> e
    | Unop (op, a) -> Unop (op, go a)
    | Binop (op, a, b) -> Binop (op, go a, go b)
    | Mux (s, t, e') -> (
      match go s with
      | Const c -> if Bitvec.get c 0 then go t else go e'
      | s' -> Mux (s', go t, go e'))
    | Slice (a, hi, lo) -> slice_of (go a) hi lo
  and slice_of a hi lo =
    match a with
    | _ when lo = 0 && hi = width_of a - 1 -> a
    | Const c -> Const (Bitvec.slice c ~hi ~lo)
    | Slice (b, _, lo2) -> slice_of b (lo2 + hi) (lo2 + lo)
    | Binop (Concat, hi_part, lo_part) ->
      let wlo = width_of lo_part in
      if hi < wlo then slice_of lo_part hi lo
      else if lo >= wlo then slice_of hi_part (hi - wlo) (lo - wlo)
      else Slice (a, hi, lo)
    | Var _ | Unop _ | Binop _ | Mux _ -> Slice (a, hi, lo)
  in
  go e

let equal = ( = )
let compare = Stdlib.compare

let unop_symbol = function
  | Not -> "~"
  | Red_and -> "&"
  | Red_or -> "|"
  | Red_xor -> "^"

let binop_symbol = function
  | And -> "&"
  | Or -> "|"
  | Xor -> "^"
  | Xnor -> "~^"
  | Add -> "+"
  | Sub -> "-"
  | Eq -> "=="
  | Ne -> "!="
  | Lt -> "<"
  | Concat -> ","

let rec pp ppf = function
  | Const b -> Bitvec.pp ppf b
  | Var x -> Format.pp_print_string ppf x
  | Unop (op, e) -> Format.fprintf ppf "%s(%a)" (unop_symbol op) pp e
  | Binop (Concat, a, b) -> Format.fprintf ppf "{%a, %a}" pp a pp b
  | Binop (op, a, b) ->
    Format.fprintf ppf "(%a %s %a)" pp a (binop_symbol op) pp b
  | Mux (s, t, e) -> Format.fprintf ppf "(%a ? %a : %a)" pp s pp t pp e
  | Slice (e, hi, lo) ->
    if hi = lo then Format.fprintf ppf "%a[%d]" pp e lo
    else Format.fprintf ppf "%a[%d:%d]" pp e hi lo

let to_string e = Format.asprintf "%a" pp e
