module String_set = Set.Make (String)

(* fixpoint over the signal dependency graph: a signal depends on the
   support of its driving assign, or of its next-state function if it is a
   register *)
let cone (nl : Netlist.t) ~roots =
  let driver = Hashtbl.create 97 in
  List.iter (fun (lhs, rhs) -> Hashtbl.replace driver lhs rhs) nl.Netlist.assigns;
  let reg_next = Hashtbl.create 97 in
  List.iter
    (fun (r : Netlist.flat_reg) -> Hashtbl.replace reg_next r.name r.next)
    nl.Netlist.regs;
  let declared = Netlist.signals nl in
  List.iter
    (fun root ->
      if not (List.mem_assoc root declared) then raise Not_found)
    roots;
  let rec visit seen name =
    if String_set.mem name seen then seen
    else
      let seen = String_set.add name seen in
      let deps =
        match Hashtbl.find_opt driver name with
        | Some rhs -> Expr.support rhs
        | None -> (
          match Hashtbl.find_opt reg_next name with
          | Some next -> Expr.support next
          | None -> [])
      in
      List.fold_left visit seen deps
  in
  List.fold_left visit String_set.empty roots

let cone_size nl ~roots =
  let keep = cone nl ~roots in
  let regs =
    List.length
      (List.filter (fun (r : Netlist.flat_reg) -> String_set.mem r.name keep)
         nl.Netlist.regs)
  in
  let assigns =
    List.length
      (List.filter (fun (lhs, _) -> String_set.mem lhs keep) nl.Netlist.assigns)
  in
  (regs, assigns)

let reduce (nl : Netlist.t) ~roots =
  let keep = cone nl ~roots in
  let mem name = String_set.mem name keep in
  { nl with
    inputs = List.filter (fun (name, _) -> mem name) nl.Netlist.inputs;
    outputs = List.filter (fun (name, _) -> mem name) nl.Netlist.outputs;
    wires = List.filter (fun (name, _) -> mem name) nl.Netlist.wires;
    assigns = List.filter (fun (lhs, _) -> mem lhs) nl.Netlist.assigns;
    regs =
      List.filter (fun (r : Netlist.flat_reg) -> mem r.name) nl.Netlist.regs }
