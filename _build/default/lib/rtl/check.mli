(** Module-level lint — the "Verifiable RTL release" gate of the paper's
    design flow (Figure 5): before a designer hands a module to the formal
    flow it must be structurally well formed. *)

type issue = {
  where : string;  (** module name *)
  what : string;
}

val check_module : Design.t -> Mdl.t -> issue list
(** Width-checks every expression, verifies all referenced signals are
    declared, each wire/output is driven exactly once, input ports are never
    driven, and instance connections match the instantiated module's ports
    in existence, direction and width. *)

val check_design : Design.t -> issue list
val pp_issue : Format.formatter -> issue -> unit
