module X = Rtl.Bexpr

type netcount = {
  cells : (Gatelib.cell * int) list;
  area_ge : float;
}

let zero_counts () =
  let tbl = Hashtbl.create 7 in
  List.iter (fun c -> Hashtbl.replace tbl c 0) Gatelib.all;
  tbl

let bump tbl cell n = Hashtbl.replace tbl cell (Hashtbl.find tbl cell + n)

(* count DAG nodes once each; Xor maps to XOR2, Ite to MUX2 *)
let count_bexpr tbl seen root =
  let rec go (e : X.t) =
    if not (Hashtbl.mem seen (X.id e)) then begin
      Hashtbl.replace seen (X.id e) ();
      match e.X.node with
      | X.True | X.False | X.Var _ -> ()
      | X.Not a ->
        bump tbl Gatelib.Inv 1;
        go a
      | X.And (a, b) ->
        bump tbl Gatelib.And2 1;
        go a;
        go b
      | X.Or (a, b) ->
        bump tbl Gatelib.Or2 1;
        go a;
        go b
      | X.Xor (a, b) ->
        bump tbl Gatelib.Xor2 1;
        go a;
        go b
      | X.Ite (c, t, e') ->
        bump tbl Gatelib.Mux2 1;
        go c;
        go t;
        go e'
    end
  in
  go root

let finish tbl =
  let cells = List.map (fun c -> (c, Hashtbl.find tbl c)) Gatelib.all in
  let area_ge =
    List.fold_left
      (fun acc (c, n) -> acc +. (float_of_int n *. Gatelib.area c))
      0.0 cells
  in
  { cells; area_ge }

let map_module (m : Rtl.Mdl.t) =
  let tbl = zero_counts () in
  let seen = Hashtbl.create 997 in
  (* declared signals are boundaries: every bit is a fresh variable *)
  let var_of = Hashtbl.create 97 in
  let next_var = ref 0 in
  let env name =
    match Hashtbl.find_opt var_of name with
    | Some bits -> bits
    | None ->
      let w = Rtl.Mdl.signal_width m name in
      let bits =
        Array.init w (fun _ ->
            let v = !next_var in
            incr next_var;
            X.var v)
      in
      Hashtbl.replace var_of name bits;
      bits
  in
  List.iter
    (fun (a : Rtl.Mdl.assign) ->
      Array.iter (count_bexpr tbl seen) (Rtl.Bitblast.expr ~env a.Rtl.Mdl.rhs))
    m.Rtl.Mdl.assigns;
  List.iter
    (fun (r : Rtl.Mdl.reg) ->
      bump tbl Gatelib.Dff r.Rtl.Mdl.reg_width;
      Array.iter (count_bexpr tbl seen) (Rtl.Bitblast.expr ~env r.Rtl.Mdl.next))
    m.Rtl.Mdl.regs;
  finish tbl

let map_hierarchy design ~root =
  let tree = Rtl.Design.instance_tree design ~root in
  (* map each distinct module once; multiply by its instance count *)
  let uses = Hashtbl.create 97 in
  List.iter
    (fun (_, module_name) ->
      let n = Option.value ~default:0 (Hashtbl.find_opt uses module_name) in
      Hashtbl.replace uses module_name (n + 1))
    tree;
  let tbl = zero_counts () in
  Hashtbl.iter
    (fun module_name count ->
      let nc = map_module (Rtl.Design.find_exn design module_name) in
      List.iter (fun (c, n) -> bump tbl c (n * count)) nc.cells)
    uses;
  finish tbl

let cell_count nc cell =
  match List.assoc_opt cell nc.cells with Some n -> n | None -> 0

let pp ppf nc =
  List.iter
    (fun (c, n) ->
      if n > 0 then Format.fprintf ppf "%-5s %6d@." (Gatelib.name c) n)
    nc.cells;
  Format.fprintf ppf "total %8.1f GE@." nc.area_ge
