(** A small standard-cell library with gate-equivalent areas and intrinsic
    delays representative of the paper's 0.11um CMOS ASIC process. The MUX2
    delay is the paper's quoted ~200 ps selector delay. *)

type cell = Inv | And2 | Or2 | Xor2 | Mux2 | Dff

val all : cell list
val name : cell -> string

val area : cell -> float
(** Gate equivalents (NAND2 = 1.0). *)

val delay : cell -> float
(** Propagation delay in picoseconds; for [Dff] this is clock-to-Q. *)

val cap_ff : cell -> float
(** Switched output capacitance in femtofarads (gate + typical wire load),
    used by the dynamic-power estimate. *)

val supply_v : float
(** Nominal supply of the modeled 0.11 um process (1.2 V). *)

val clock_period_ps : frequency_mhz:float -> float
