(** Structural technology mapping: bit-blast a module's own logic (assigns
    and register next-state functions, instances excluded) and count cells.
    Declared signals are mapping boundaries, so the counts correspond to the
    netlist a designer would read. *)

type netcount = {
  cells : (Gatelib.cell * int) list;  (** every library cell, possibly 0 *)
  area_ge : float;  (** total gate equivalents *)
}

val map_module : Rtl.Mdl.t -> netcount
(** Own logic of one module. *)

val map_hierarchy : Rtl.Design.t -> root:string -> netcount
(** Sum over the instance tree rooted at [root]. *)

val cell_count : netcount -> Gatelib.cell -> int
val pp : Format.formatter -> netcount -> unit
