type cell = Inv | And2 | Or2 | Xor2 | Mux2 | Dff

let all = [ Inv; And2; Or2; Xor2; Mux2; Dff ]

let name = function
  | Inv -> "INV"
  | And2 -> "AND2"
  | Or2 -> "OR2"
  | Xor2 -> "XOR2"
  | Mux2 -> "MUX2"
  | Dff -> "DFF"

let area = function
  | Inv -> 0.5
  | And2 -> 1.25
  | Or2 -> 1.25
  | Xor2 -> 2.5
  | Mux2 -> 2.5
  | Dff -> 6.0

let delay = function
  | Inv -> 30.0
  | And2 -> 60.0
  | Or2 -> 60.0
  | Xor2 -> 90.0
  | Mux2 -> 200.0
  | Dff -> 150.0

let cap_ff = function
  | Inv -> 3.0
  | And2 -> 5.0
  | Or2 -> 5.0
  | Xor2 -> 8.0
  | Mux2 -> 8.0
  | Dff -> 12.0

let supply_v = 1.2

let clock_period_ps ~frequency_mhz = 1.0e6 /. frequency_mhz
