(** Activity-based dynamic power estimation.

    The classic CMOS dynamic-power model: each gate output switching with
    activity α dissipates ½ · α · C · V² · f. Activity factors per signal
    come from simulation (e.g. {!Sim.Coverage.activity}) through the
    [activity] callback; gates inside a signal's driving cone inherit that
    signal's activity (a standard zero-delay approximation). Clock power
    counts every flop's clock pin at activity 1. *)

type report = {
  combinational_mw : float;
  clock_mw : float;
  sequential_mw : float;  (** flop output switching *)
  total_mw : float;
}

val estimate :
  ?voltage:float ->
  ?frequency_mhz:float ->
  Rtl.Netlist.t ->
  activity:(string -> float) ->
  report
(** [activity name] is the per-bit switching activity of signal [name] in
    [0..1]; signals the caller has no data for may return a default (e.g.
    0.1). Defaults: the library supply voltage and 250 MHz. *)

val pp : Format.formatter -> report -> unit
