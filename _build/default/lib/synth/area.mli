(** Area reporting, including the paper's Table 4 quantity: the relative
    area cost of the error-injection feature. *)

val module_area : Rtl.Mdl.t -> float
(** Gate equivalents of one module's own logic. *)

val hierarchy_area : Rtl.Design.t -> root:string -> float

val increase_percent : base:float -> with_feature:float -> float
(** [(with_feature - base) / base * 100]. *)

val gates_estimate : Rtl.Design.t -> root:string -> int
(** Rounded gate-equivalent count — comparable to the paper's "logic size:
    3.5M gates" line in Table 1. *)
