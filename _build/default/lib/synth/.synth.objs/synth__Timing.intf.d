lib/synth/timing.mli: Rtl
