lib/synth/power.ml: Array Format Gatelib Hashtbl List Rtl
