lib/synth/area.ml: Float Map
