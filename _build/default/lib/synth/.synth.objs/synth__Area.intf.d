lib/synth/area.mli: Rtl
