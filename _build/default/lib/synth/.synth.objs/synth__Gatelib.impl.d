lib/synth/gatelib.ml:
