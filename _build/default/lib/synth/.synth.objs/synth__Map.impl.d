lib/synth/map.ml: Array Format Gatelib Hashtbl List Option Rtl
