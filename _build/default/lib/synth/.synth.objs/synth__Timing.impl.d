lib/synth/timing.ml: Array Float Gatelib Hashtbl List Option Printf Rtl
