lib/synth/power.mli: Format Rtl
