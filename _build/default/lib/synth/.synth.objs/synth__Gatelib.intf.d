lib/synth/gatelib.mli:
