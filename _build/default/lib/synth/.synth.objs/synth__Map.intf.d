lib/synth/map.mli: Format Gatelib Rtl
