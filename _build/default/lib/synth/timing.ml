module X = Rtl.Bexpr
module N = Rtl.Netlist

type report = {
  critical_path_ps : float;
  critical_endpoint : string;
  slack_ps : float;
  period_ps : float;
}

let selector_delay_ps = Gatelib.delay Gatelib.Mux2

let node_delay (e : X.t) =
  match e.X.node with
  | X.True | X.False | X.Var _ -> 0.0
  | X.Not _ -> Gatelib.delay Gatelib.Inv
  | X.And _ -> Gatelib.delay Gatelib.And2
  | X.Or _ -> Gatelib.delay Gatelib.Or2
  | X.Xor _ -> Gatelib.delay Gatelib.Xor2
  | X.Ite _ -> Gatelib.delay Gatelib.Mux2

(* arrival times per signal bit, computed in levelized order *)
type sta = {
  nl : N.t;
  arrivals : (string, float array) Hashtbl.t;
}

let build nl =
  let sta = { nl; arrivals = Hashtbl.create 197 } in
  let clk_to_q = Gatelib.delay Gatelib.Dff in
  List.iter
    (fun (name, w) -> Hashtbl.replace sta.arrivals name (Array.make w 0.0))
    nl.N.inputs;
  List.iter
    (fun (r : N.flat_reg) ->
      Hashtbl.replace sta.arrivals r.name (Array.make r.width clk_to_q))
    nl.N.regs;
  (* bit-blast each assign with leaves tagged by arrival time: variable id
     encodes nothing; we keep a side table id -> arrival *)
  let leaf_arrival : (int, float) Hashtbl.t = Hashtbl.create 997 in
  let next_var = ref 0 in
  let leaf t =
    let v = !next_var in
    incr next_var;
    Hashtbl.replace leaf_arrival v t;
    X.var v
  in
  let env name =
    match Hashtbl.find_opt sta.arrivals name with
    | Some times -> Array.map leaf times
    | None ->
      invalid_arg (Printf.sprintf "Timing: %s read before driven" name)
  in
  let arrival_cache : (int, float) Hashtbl.t = Hashtbl.create 997 in
  let rec arrival (e : X.t) =
    match Hashtbl.find_opt arrival_cache (X.id e) with
    | Some t -> t
    | None ->
      let t =
        match e.X.node with
        | X.True | X.False -> 0.0
        | X.Var v -> Option.value ~default:0.0 (Hashtbl.find_opt leaf_arrival v)
        | X.Not a -> node_delay e +. arrival a
        | X.And (a, b) | X.Or (a, b) | X.Xor (a, b) ->
          node_delay e +. Float.max (arrival a) (arrival b)
        | X.Ite (c, a, b) ->
          node_delay e
          +. Float.max (arrival c) (Float.max (arrival a) (arrival b))
      in
      Hashtbl.replace arrival_cache (X.id e) t;
      t
  in
  List.iter
    (fun (lhs, rhs) ->
      let bits = Rtl.Bitblast.expr ~env rhs in
      Hashtbl.replace sta.arrivals lhs (Array.map arrival bits))
    nl.N.assigns;
  (sta, env, arrival)

let arrival_of_signal nl name =
  let sta, _, _ = build nl in
  match Hashtbl.find_opt sta.arrivals name with
  | Some times -> Array.fold_left Float.max 0.0 times
  | None -> raise Not_found

let analyze ?(frequency_mhz = 250.0) nl =
  let sta, env, arrival = build nl in
  let worst = ref 0.0 in
  let endpoint = ref "(none)" in
  let consider name t =
    if t > !worst then begin
      worst := t;
      endpoint := name
    end
  in
  (* paths ending at register D inputs *)
  List.iter
    (fun (r : N.flat_reg) ->
      let bits = Rtl.Bitblast.expr ~env r.next in
      Array.iter (fun b -> consider r.name (arrival b)) bits)
    nl.N.regs;
  (* paths ending at primary outputs *)
  let out_arrival name =
    match Hashtbl.find_opt sta.arrivals name with
    | Some times -> Array.fold_left Float.max 0.0 times
    | None -> 0.0
  in
  List.iter (fun (name, _) -> consider name (out_arrival name)) nl.N.outputs;
  let period_ps = Gatelib.clock_period_ps ~frequency_mhz in
  { critical_path_ps = !worst; critical_endpoint = !endpoint;
    slack_ps = period_ps -. !worst; period_ps }
