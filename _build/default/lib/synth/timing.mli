(** Static timing analysis over an elaborated netlist: topological
    longest-path with the library's intrinsic delays. Register outputs
    launch at clock-to-Q; paths end at register data inputs and primary
    outputs. *)

type report = {
  critical_path_ps : float;
  critical_endpoint : string;  (** register or output name *)
  slack_ps : float;  (** at the given frequency *)
  period_ps : float;
}

val analyze : ?frequency_mhz:float -> Rtl.Netlist.t -> report
(** [frequency_mhz] defaults to the paper's 250 MHz. *)

val arrival_of_signal : Rtl.Netlist.t -> string -> float
(** Worst arrival time (ps) across a signal's bits. *)

val selector_delay_ps : float
(** The injection selector's delay — one MUX2 (the paper reports ~200 ps,
    ~4-5% of the 250 MHz cycle). *)
