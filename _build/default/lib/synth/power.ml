module X = Rtl.Bexpr
module N = Rtl.Netlist

type report = {
  combinational_mw : float;
  clock_mw : float;
  sequential_mw : float;
  total_mw : float;
}

(* energy of one switching event of a cell, in femtojoules *)
let switch_energy_fj voltage cell =
  0.5 *. Gatelib.cap_ff cell *. voltage *. voltage

let cell_of_node (e : X.t) =
  match e.X.node with
  | X.True | X.False | X.Var _ -> None
  | X.Not _ -> Some Gatelib.Inv
  | X.And _ -> Some Gatelib.And2
  | X.Or _ -> Some Gatelib.Or2
  | X.Xor _ -> Some Gatelib.Xor2
  | X.Ite _ -> Some Gatelib.Mux2

(* per-root switched capacitance energy, nodes shared across roots counted
   once at the activity of the first root that reaches them *)
let cone_energy voltage seen alpha root =
  let acc = ref 0.0 in
  let rec go (e : X.t) =
    if not (Hashtbl.mem seen (X.id e)) then begin
      Hashtbl.replace seen (X.id e) ();
      (match cell_of_node e with
       | Some cell -> acc := !acc +. (alpha *. switch_energy_fj voltage cell)
       | None -> ());
      match e.X.node with
      | X.True | X.False | X.Var _ -> ()
      | X.Not a -> go a
      | X.And (a, b) | X.Or (a, b) | X.Xor (a, b) ->
        go a;
        go b
      | X.Ite (c, t, f) ->
        go c;
        go t;
        go f
    end
  in
  go root;
  !acc

let estimate ?(voltage = Gatelib.supply_v) ?(frequency_mhz = 250.0) nl
    ~activity =
  let f_hz = frequency_mhz *. 1.0e6 in
  (* femtojoules-per-cycle accumulated across the blasted netlist *)
  let var_of = Hashtbl.create 97 in
  let next_var = ref 0 in
  let env name =
    match Hashtbl.find_opt var_of name with
    | Some bits -> bits
    | None ->
      let w = N.signal_width nl name in
      let bits =
        Array.init w (fun _ ->
            let v = !next_var in
            incr next_var;
            X.var v)
      in
      Hashtbl.replace var_of name bits;
      bits
  in
  let seen = Hashtbl.create 997 in
  let comb_fj = ref 0.0 in
  List.iter
    (fun (lhs, rhs) ->
      let alpha = activity lhs in
      Array.iter
        (fun bit -> comb_fj := !comb_fj +. cone_energy voltage seen alpha bit)
        (Rtl.Bitblast.expr ~env rhs))
    nl.N.assigns;
  let seq_fj = ref 0.0 in
  let clock_fj = ref 0.0 in
  List.iter
    (fun (r : N.flat_reg) ->
      let alpha = activity r.N.name in
      (* next-state logic switches with the register's activity *)
      Array.iter
        (fun bit -> comb_fj := !comb_fj +. cone_energy voltage seen alpha bit)
        (Rtl.Bitblast.expr ~env r.N.next);
      (* flop output switching + its clock pin every cycle *)
      let per_bit = switch_energy_fj voltage Gatelib.Dff in
      seq_fj := !seq_fj +. (alpha *. per_bit *. float_of_int r.N.width);
      clock_fj := !clock_fj +. (per_bit *. float_of_int r.N.width))
    nl.N.regs;
  (* fJ per cycle * cycles per second = fW; fW -> mW is 1e-12 *)
  let to_mw fj = fj *. f_hz *. 1.0e-12 in
  let combinational_mw = to_mw !comb_fj in
  let sequential_mw = to_mw !seq_fj in
  let clock_mw = to_mw !clock_fj in
  { combinational_mw; clock_mw; sequential_mw;
    total_mw = combinational_mw +. sequential_mw +. clock_mw }

let pp ppf r =
  Format.fprintf ppf
    "dynamic power: %.3f mW (combinational %.3f, sequential %.3f, clock %.3f)@."
    r.total_mw r.combinational_mw r.sequential_mw r.clock_mw
