let module_area m = (Map.map_module m).Map.area_ge

let hierarchy_area design ~root = (Map.map_hierarchy design ~root).Map.area_ge

let increase_percent ~base ~with_feature =
  if base <= 0.0 then invalid_arg "Area.increase_percent: base must be positive";
  (with_feature -. base) /. base *. 100.0

let gates_estimate design ~root =
  int_of_float (Float.round (hierarchy_area design ~root))
