(** Synthetic chip assembly.

    Five module categories A–E reproduce the structure of the paper's
    Table 2: the same sub-module counts (19/2/13/3/58) and the same
    per-category stereotype-property counts (P0/P1/P2/P3). Leaf parameters
    are solved from those targets; the seven bug archetypes are placed in
    the categories whose bug counts the paper reports (A: 3, C: 1, D: 1,
    E: 2). *)

type unit_ = {
  leaf : Archetype.leaf;
  info : Verifiable.Transform.info;  (** the Verifiable-RTL form *)
  spec : Verifiable.Propgen.spec;
}

type expected = { sub : int; bugs : int; p0 : int; p1 : int; p2 : int; p3 : int }

type category = {
  cat_name : string;
  top : string;  (** category top module name in [design] *)
  units : unit_ list;
  expected : expected;
}

type t = {
  design : Rtl.Design.t;  (** Verifiable RTL: transformed leaves, category
                              tops with injection tie-offs, chip top *)
  base_design : Rtl.Design.t;  (** the same chip without the error-injection
                                   feature (Table 4 baseline) *)
  chip_top : string;
  categories : category list;
}

val paper_expected : (string * expected) list
(** Table 2 as published. *)

val generate : ?with_bugs:bool -> unit -> t
(** [with_bugs] defaults to [true] (the pre-fix chip, used to find the seven
    bugs); [false] builds the post-fix chip on which all 2047 properties
    hold. *)

val find_unit : t -> Bugs.id -> category * unit_
(** The category and leaf carrying a given seeded bug. Raises [Not_found]
    on a bug-free chip. *)

val total_counts : t -> int * int * int * int
(** Generated [(p0, p1, p2, p3)] across the whole chip. *)
