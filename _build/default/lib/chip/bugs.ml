type id = B0 | B1 | B2 | B3 | B4 | B5 | B6

let all = [ B0; B1; B2; B3; B4; B5; B6 ]

let name = function
  | B0 -> "B0"
  | B1 -> "B1"
  | B2 -> "B2"
  | B3 -> "B3"
  | B4 -> "B4"
  | B5 -> "B5"
  | B6 -> "B6"

let property_class = function
  | B0 | B1 | B2 -> Verifiable.Propgen.P1
  | B3 -> Verifiable.Propgen.P0
  | B4 | B5 | B6 -> Verifiable.Propgen.P2

let expected_sim_easy = function
  | B0 | B2 | B4 -> true
  | B1 | B3 | B5 | B6 -> false

let describe = function
  | B0 ->
    "FSM next-state parity bit computed from the current state instead of \
     the next state; an internal parity error is raised on ordinary \
     transitions."
  | B1 ->
    "A write of a non-zero value into a reserved CSR field clears the field \
     but keeps the incoming parity bit, so the stored word's parity is \
     wrong. Well-behaved testbenches write zeros to reserved fields, so \
     random simulation almost never exercises the condition."
  | B2 ->
    "Counter wrap-around miscomputes the parity bit exactly at the wrap \
     value; any sufficiently long count sequence trips it."
  | B3 ->
    "Error reporting is gated by a macro-supplied ready signal that is not \
     guaranteed immediately after reset; the simulation model of the macro \
     (wrongly) drives it active from cycle 0, so only formal analysis, \
     which leaves the input free, can expose the missed detection."
  | B4 ->
    "The ALU result path re-encodes parity with the wrong polarity for the \
     XOR opcode; nearly every XOR operation produces a bad codeword."
  | B5 ->
    "Address decoder with 91 valid cases in an 8-bit space: for one \
     specific valid address the datapath parity is computed over a stale \
     bit pattern and is wrong only for one data value in 256."
  | B6 ->
    "Second wrong case of the address decoder (distinct address, distinct \
     sensitizing data pattern) — same mechanism as B5."
