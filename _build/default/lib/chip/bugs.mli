(** The seven logic-bug archetypes of the paper's Table 3, reproduced as
    seedable RTL defects with the same mechanism and the same
    formal-vs-simulation detectability profile. *)

type id = B0 | B1 | B2 | B3 | B4 | B5 | B6

val all : id list
val name : id -> string

val property_class : id -> Verifiable.Propgen.prop_class
(** The property type that catches the bug (Table 3, column 2). *)

val expected_sim_easy : id -> bool
(** Table 3, column 3: can it be found easily by logic simulation? *)

val describe : id -> string
(** The paper's §6.2 mechanism, as reproduced here. *)
