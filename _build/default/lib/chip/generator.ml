module M = Rtl.Mdl
module T = Verifiable.Transform
module PG = Verifiable.Propgen

type unit_ = {
  leaf : Archetype.leaf;
  info : T.info;
  spec : PG.spec;
}

type expected = { sub : int; bugs : int; p0 : int; p1 : int; p2 : int; p3 : int }

type category = {
  cat_name : string;
  top : string;
  units : unit_ list;
  expected : expected;
}

type t = {
  design : Rtl.Design.t;
  base_design : Rtl.Design.t;
  chip_top : string;
  categories : category list;
}

let paper_expected =
  [ ("A", { sub = 19; bugs = 3; p0 = 204; p1 = 23; p2 = 113; p3 = 15 });
    ("B", { sub = 2; bugs = 0; p0 = 25; p1 = 23; p2 = 82; p3 = 0 });
    ("C", { sub = 13; bugs = 1; p0 = 43; p1 = 20; p2 = 38; p3 = 0 });
    ("D", { sub = 3; bugs = 1; p0 = 70; p1 = 46; p2 = 137; p3 = 6 });
    ("E", { sub = 58; bugs = 2; p0 = 964; p1 = 88; p2 = 150; p3 = 0 }) ]

(* split [total] into [n] near-equal non-negative parts *)
let spread total n =
  if n <= 0 then []
  else List.init n (fun i -> (total / n) + if i < total mod n then 1 else 0)

(* build one filler from its property-count quota *)
let filler_of_quota ~name (p0, p1, p2, p3) =
  if p0 < 1 then invalid_arg "Generator: filler quota needs p0 >= 1";
  let n_fsm, n_cnt, n_dp =
    if p0 >= 4 then (1, 1, 1) else if p0 >= 2 then (1, 1, 0) else (1, 0, 0)
  in
  let n_ent = n_fsm + n_cnt + n_dp in
  let n_parity_in = p0 - n_ent in
  if p1 > p0 then invalid_arg "Generator: filler quota needs p1 <= p0";
  Archetype.filler ~name ~n_fsm ~n_cnt ~n_dp ~n_parity_in ~n_parity_out:p2
    ~he_bits:(max 1 p1) ~n_extra:p3

let sum4 l =
  List.fold_left
    (fun (a0, a1, a2, a3) (b0, b1, b2, b3) -> (a0 + b0, a1 + b1, a2 + b2, a3 + b3))
    (0, 0, 0, 0) l

(* specials first, then fillers solved from the remaining quota *)
let build_category ~cat_name ~expected ~specials =
  let special_counts = List.map Archetype.property_counts specials in
  let s0, s1, s2, s3 = sum4 special_counts in
  let nf = expected.sub - List.length specials in
  if nf < 0 then invalid_arg "Generator: more specials than sub-modules";
  let r0 = expected.p0 - s0
  and r1 = expected.p1 - s1
  and r2 = expected.p2 - s2
  and r3 = expected.p3 - s3 in
  if r0 < 0 || r1 < 0 || r2 < 0 || r3 < 0 then
    invalid_arg (Printf.sprintf "Generator: category %s over-provisioned" cat_name);
  let quotas =
    let q0 = spread r0 nf and q1 = spread r1 nf and q2 = spread r2 nf
    and q3 = spread r3 nf in
    List.map2
      (fun (a, b) (c, d) -> (a, b, c, d))
      (List.combine q0 q1) (List.combine q2 q3)
  in
  let fillers =
    List.mapi
      (fun i quota ->
        filler_of_quota ~name:(Printf.sprintf "%s_leaf%02d" cat_name i) quota)
      quotas
  in
  specials @ fillers

let finish_leaf (leaf : Archetype.leaf) =
  let info = T.apply leaf.Archetype.mdl in
  let spec =
    { PG.he = leaf.Archetype.he; he_map = leaf.Archetype.he_map;
      parity_inputs = leaf.Archetype.parity_inputs;
      parity_outputs = leaf.Archetype.parity_outputs;
      extra = leaf.Archetype.extra_props }
  in
  { leaf; info; spec }

(* a pass-through top: every leaf port becomes a prefixed top port;
   injection ports (when present) are tied to zero per Figure 6 *)
let passthrough_top ~name entries =
  let top = M.create name in
  let top =
    List.fold_left
      (fun top (prefix, (mdl : M.t), ties) ->
        let conns = ref ties in
        let top =
          List.fold_left
            (fun top (p : M.port) ->
              if List.mem_assoc p.M.port_name !conns then top
              else begin
                let tname = prefix ^ "_" ^ p.M.port_name in
                conns := (p.M.port_name, M.Net tname) :: !conns;
                match p.M.dir with
                | M.Input -> M.add_input top tname p.M.port_width
                | M.Output -> M.add_output top tname p.M.port_width
              end)
            top mdl.M.ports
        in
        M.add_instance top prefix ~of_module:mdl.M.name !conns)
      top entries
  in
  top

(* chain [count] ballast instances through a category top *)
let append_ballast top ~ballast_mdl ~count =
  if count <= 0 then top
  else begin
    let width =
      match Rtl.Mdl.find_port ballast_mdl "DIN" with
      | Some p -> p.M.port_width
      | None -> invalid_arg "Generator: ballast has no DIN"
    in
    let top = M.add_input top "BAL_IN" width in
    let top = M.add_output top "BAL_OUT" width in
    let wire i = Printf.sprintf "bal_w%d" i in
    let top =
      List.fold_left (fun top i -> M.add_wire top (wire i) width) top
        (List.init (count - 1) Fun.id)
    in
    List.fold_left
      (fun top i ->
        let din = if i = 0 then "BAL_IN" else wire (i - 1) in
        let dout = if i = count - 1 then "BAL_OUT" else wire i in
        M.add_instance top
          (Printf.sprintf "bal%04d" i)
          ~of_module:ballast_mdl.M.name
          [ ("DIN", M.Net din); ("DOUT", M.Net dout) ])
      top
      (List.init count Fun.id)
  end

(* background-logic sizing: Table 4 reports the area increase caused by the
   injection feature per category (A 1.4%, B 0.4%, D 0.2%); the increase is
   inj/base, so each category's base area is padded with plain compute logic
   to inj / target. Category E absorbs the remainder of the paper's 3.5M-gate
   chip (Table 1). *)
let target_increase_percent = [ ("A", 1.4); ("B", 0.4); ("C", 0.8); ("D", 0.2) ]

let chip_target_ge = 3_500_000.0

let ballast_counts categories_with_units =
  let ballast_mdl = Archetype.ballast ~name:"ballast_unit" () in
  let unit_ge = Synth.Area.module_area ballast_mdl in
  let measured =
    List.map
      (fun (cat_name, _, units) ->
        let inj =
          List.fold_left
            (fun acc u ->
              acc
              +. Synth.Area.module_area u.info.T.mdl
              -. Synth.Area.module_area u.leaf.Archetype.mdl)
            0.0 units
        in
        let base =
          List.fold_left
            (fun acc u -> acc +. Synth.Area.module_area u.leaf.Archetype.mdl)
            0.0 units
        in
        (cat_name, inj, base))
      categories_with_units
  in
  let sized =
    List.map
      (fun (cat_name, inj, base) ->
        match List.assoc_opt cat_name target_increase_percent with
        | Some pct -> (cat_name, inj, base, Some (inj *. 100.0 /. pct))
        | None -> (cat_name, inj, base, None))
      measured
  in
  let allocated =
    List.fold_left
      (fun acc (_, _, _, t) -> match t with Some t -> acc +. t | None -> acc)
      0.0 sized
  in
  List.map
    (fun (cat_name, _, base, target) ->
      let total =
        match target with
        | Some t -> t
        | None -> Float.max base (chip_target_ge -. allocated)
      in
      let count =
        int_of_float (Float.max 0.0 ((total -. base) /. unit_ge +. 0.5))
      in
      (cat_name, count))
    sized
  |> fun counts -> (ballast_mdl, counts)

let category_tops ~cat_name units =
  let ver_entries =
    List.mapi
      (fun i u ->
        (Printf.sprintf "u%02d" i, u.info.T.mdl, T.tie_offs u.info))
      units
  in
  let base_entries =
    List.mapi
      (fun i u -> (Printf.sprintf "u%02d" i, u.leaf.Archetype.mdl, []))
      units
  in
  let ver = passthrough_top ~name:("cat_" ^ cat_name) ver_entries in
  let base = passthrough_top ~name:("cat_" ^ cat_name) base_entries in
  (ver, base)

let generate ?(with_bugs = true) () =
  let b = with_bugs in
  let specials_of = function
    | "A" ->
      [ Archetype.fsm_ctrl ~name:"a_fsm_ctrl" ~bug:b ();
        Archetype.csr ~name:"a_csr" ~bug:b ();
        Archetype.counter ~name:"a_counter" ~bug:b () ]
    | "B" -> []
    | "C" -> [ Archetype.macro_if ~name:"c_macro_if" ~bug:b () ]
    | "D" -> [ Archetype.datapath ~name:"d_alu" ~bug:b () ]
    | "E" ->
      [ Archetype.decoder ~name:"e_dec0"
          ?bug:(if b then Some (Bugs.B5, 37, 0x5A) else None) ();
        Archetype.decoder ~name:"e_dec1"
          ?bug:(if b then Some (Bugs.B6, 73, 0xC3) else None) () ]
    | cat -> invalid_arg ("Generator: unknown category " ^ cat)
  in
  let categories =
    List.map
      (fun (cat_name, expected) ->
        let leaves =
          build_category ~cat_name ~expected ~specials:(specials_of cat_name)
        in
        let units = List.map finish_leaf leaves in
        (cat_name, expected, units))
      paper_expected
  in
  let ballast_mdl, ballast_per_cat = ballast_counts categories in
  let design = ref (Rtl.Design.of_modules [ ballast_mdl ]) in
  let base_design = ref (Rtl.Design.of_modules [ ballast_mdl ]) in
  let cats =
    List.map
      (fun (cat_name, expected, units) ->
        let ver_top, base_top = category_tops ~cat_name units in
        let count =
          Option.value ~default:0 (List.assoc_opt cat_name ballast_per_cat)
        in
        let ver_top = append_ballast ver_top ~ballast_mdl ~count in
        let base_top = append_ballast base_top ~ballast_mdl ~count in
        List.iter
          (fun u ->
            design := Rtl.Design.add !design u.info.T.mdl;
            base_design := Rtl.Design.add !base_design u.leaf.Archetype.mdl)
          units;
        design := Rtl.Design.add !design ver_top;
        base_design := Rtl.Design.add !base_design base_top;
        { cat_name; top = ver_top.M.name; units; expected })
      categories
  in
  (* chip top wires the five category tops together *)
  let chip_entries design_ref =
    List.map
      (fun c ->
        ( "cat" ^ String.lowercase_ascii c.cat_name,
          Rtl.Design.find_exn !design_ref c.top,
          [] ))
      cats
  in
  let chip_ver = passthrough_top ~name:"chip_top" (chip_entries design) in
  let chip_base = passthrough_top ~name:"chip_top" (chip_entries base_design) in
  design := Rtl.Design.add !design chip_ver;
  base_design := Rtl.Design.add !base_design chip_base;
  { design = !design; base_design = !base_design; chip_top = "chip_top";
    categories = cats }

let find_unit t bug =
  let found = ref None in
  List.iter
    (fun c ->
      List.iter
        (fun u ->
          if u.leaf.Archetype.bug = Some bug then found := Some (c, u))
        c.units)
    t.categories;
  match !found with Some x -> x | None -> raise Not_found

let total_counts t =
  sum4
    (List.concat_map
       (fun c -> List.map (fun u -> PG.counts u.info u.spec) c.units)
       t.categories)
