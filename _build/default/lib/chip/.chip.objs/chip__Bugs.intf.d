lib/chip/bugs.mli: Verifiable
