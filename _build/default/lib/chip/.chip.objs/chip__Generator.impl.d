lib/chip/generator.ml: Archetype Bugs Float Fun List Option Printf Rtl String Synth Verifiable
