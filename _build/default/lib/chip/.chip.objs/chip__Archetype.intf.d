lib/chip/archetype.mli: Bugs Psl Rtl Sim
