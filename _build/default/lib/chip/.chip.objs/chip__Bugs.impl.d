lib/chip/bugs.ml: Verifiable
