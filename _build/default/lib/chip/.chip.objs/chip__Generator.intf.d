lib/chip/generator.mli: Archetype Bugs Rtl Verifiable
