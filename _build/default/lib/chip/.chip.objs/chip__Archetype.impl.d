lib/chip/archetype.ml: Array Bitvec Bugs Fun List Option Printf Psl Random Rtl Sim Verifiable
