(** Fixed-width bit vectors.

    Values are immutable. The width is part of the value; operations that
    combine two vectors require equal widths and raise [Invalid_argument]
    otherwise. Bit 0 is the least significant bit. *)

type t

(** {1 Construction} *)

val zero : int -> t
(** [zero w] is the all-zero vector of width [w]. [w] must be positive. *)

val ones : int -> t
(** [ones w] is the all-one vector of width [w]. *)

val of_int : width:int -> int -> t
(** [of_int ~width n] takes the low [width] bits of [n]. [n] must be
    non-negative. *)

val of_string : string -> t
(** [of_string s] parses a binary string, most significant bit first,
    e.g. ["1010"]. Underscores are ignored. Raises [Invalid_argument] on an
    empty or non-binary string. *)

val of_bool : bool -> t
(** [of_bool b] is the 1-bit vector holding [b]. *)

val init : int -> (int -> bool) -> t
(** [init w f] is the vector whose bit [i] is [f i]. *)

val random : Random.State.t -> int -> t
(** [random st w] draws a uniformly random vector of width [w]. *)

(** {1 Observation} *)

val width : t -> int
val get : t -> int -> bool
(** [get v i] is bit [i]. Raises [Invalid_argument] if out of range. *)

val to_int : t -> int
(** [to_int v] converts to an int. Raises [Invalid_argument] if the value
    does not fit in an OCaml int. *)

val to_string : t -> string
(** Binary string, most significant bit first. *)

val is_zero : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
(** Unsigned comparison; widths must match. *)

val hash : t -> int
val pp : Format.formatter -> t -> unit

(** {1 Bitwise operations} *)

val lognot : t -> t
val logand : t -> t -> t
val logor : t -> t -> t
val logxor : t -> t -> t

val set : t -> int -> bool -> t
(** [set v i b] is [v] with bit [i] replaced by [b]. *)

(** {1 Reductions} *)

val red_and : t -> bool
val red_or : t -> bool
val red_xor : t -> bool
(** [red_xor v] is the parity of [v]: [true] iff the number of set bits is
    odd. *)

val popcount : t -> int

(** {1 Arithmetic (modulo 2^width)} *)

val add : t -> t -> t
val sub : t -> t -> t
val succ : t -> t
val neg : t -> t

(** {1 Structure} *)

val concat : t -> t -> t
(** [concat hi lo] places [hi] above [lo]; width is the sum. *)

val slice : t -> hi:int -> lo:int -> t
(** [slice v ~hi ~lo] extracts bits [lo..hi] inclusive. *)

val shift_left : t -> int -> t
val shift_right : t -> int -> t
(** Logical shifts; the width is preserved. *)

(** {1 Parity protection helpers} *)

val append_odd_parity : t -> t
(** [append_odd_parity v] appends one parity bit above the MSB such that the
    result has odd parity (an odd total number of set bits), the encoding the
    paper's chip uses for all protected state. *)

val has_odd_parity : t -> bool
(** [has_odd_parity v] is [true] iff [v] has an odd number of set bits, i.e.
    the codeword is legal under odd-parity protection. *)

val corrupt_bit : t -> int -> t
(** [corrupt_bit v i] flips bit [i]; models a single soft error. *)
