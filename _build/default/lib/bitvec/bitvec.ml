(* Bit vectors stored as little-endian limbs of [limb_bits] bits each; the
   top limb keeps only [width mod limb_bits] significant bits and is always
   masked so that structural equality works. *)

let limb_bits = 62
let limb_mask = (1 lsl limb_bits) - 1

type t = { width : int; limbs : int array }

let nlimbs width = (width + limb_bits - 1) / limb_bits

let top_mask width =
  let r = width mod limb_bits in
  if r = 0 then limb_mask else (1 lsl r) - 1

let normalize v =
  let n = Array.length v.limbs in
  if n > 0 then v.limbs.(n - 1) <- v.limbs.(n - 1) land top_mask v.width;
  v

let check_width w = if w <= 0 then invalid_arg "Bitvec: width must be positive"

let zero w =
  check_width w;
  { width = w; limbs = Array.make (nlimbs w) 0 }

let ones w =
  check_width w;
  normalize { width = w; limbs = Array.make (nlimbs w) limb_mask }

let of_int ~width n =
  check_width width;
  if n < 0 then invalid_arg "Bitvec.of_int: negative";
  let v = zero width in
  v.limbs.(0) <- n land limb_mask;
  if nlimbs width > 1 then v.limbs.(1) <- n lsr limb_bits;
  normalize v

let of_bool b = of_int ~width:1 (if b then 1 else 0)

let width v = v.width

let get v i =
  if i < 0 || i >= v.width then invalid_arg "Bitvec.get: index out of range";
  v.limbs.(i / limb_bits) lsr (i mod limb_bits) land 1 = 1

let set v i b =
  if i < 0 || i >= v.width then invalid_arg "Bitvec.set: index out of range";
  let limbs = Array.copy v.limbs in
  let j = i / limb_bits and k = i mod limb_bits in
  if b then limbs.(j) <- limbs.(j) lor (1 lsl k)
  else limbs.(j) <- limbs.(j) land lnot (1 lsl k);
  { v with limbs }

let init w f =
  check_width w;
  let v = zero w in
  for i = 0 to w - 1 do
    if f i then
      v.limbs.(i / limb_bits) <-
        v.limbs.(i / limb_bits) lor (1 lsl (i mod limb_bits))
  done;
  v

let random st w = init w (fun _ -> Random.State.bool st)

let of_string s =
  let bits =
    String.fold_left (fun acc c ->
        match c with
        | '0' -> false :: acc
        | '1' -> true :: acc
        | '_' -> acc
        | _ -> invalid_arg "Bitvec.of_string: expected binary digits")
      [] s
  in
  match bits with
  | [] -> invalid_arg "Bitvec.of_string: empty"
  | _ ->
    let arr = Array.of_list bits in
    init (Array.length arr) (fun i -> arr.(i))

let to_int v =
  let max_limbs_for_int = 1 in
  Array.iteri (fun i l ->
      if i > max_limbs_for_int && l <> 0 then
        invalid_arg "Bitvec.to_int: does not fit")
    v.limbs;
  if Array.length v.limbs > 1 && v.limbs.(1) lsr (62 - limb_bits + 1) <> 0
  then invalid_arg "Bitvec.to_int: does not fit";
  if Array.length v.limbs > 1 then v.limbs.(0) lor (v.limbs.(1) lsl limb_bits)
  else v.limbs.(0)

let to_string v =
  String.init v.width (fun i -> if get v (v.width - 1 - i) then '1' else '0')

let pp ppf v = Format.fprintf ppf "%d'b%s" v.width (to_string v)

let is_zero v = Array.for_all (fun l -> l = 0) v.limbs

let equal a b = a.width = b.width && a.limbs = b.limbs

let compare a b =
  if a.width <> b.width then invalid_arg "Bitvec.compare: width mismatch";
  let rec go i =
    if i < 0 then 0
    else
      let c = Stdlib.compare a.limbs.(i) b.limbs.(i) in
      if c <> 0 then c else go (i - 1)
  in
  go (Array.length a.limbs - 1)

let hash v = Hashtbl.hash (v.width, v.limbs)

let map2 f a b =
  if a.width <> b.width then invalid_arg "Bitvec: width mismatch";
  normalize { width = a.width; limbs = Array.map2 f a.limbs b.limbs }

let lognot v =
  normalize { v with limbs = Array.map (fun l -> lnot l land limb_mask) v.limbs }

let logand = map2 ( land )
let logor = map2 ( lor )
let logxor = map2 ( lxor )

let red_or v = not (is_zero v)
let red_and v = equal v (ones v.width)

let popcount v =
  let count_limb l =
    let rec go l acc = if l = 0 then acc else go (l lsr 1) (acc + (l land 1)) in
    go l 0
  in
  Array.fold_left (fun acc l -> acc + count_limb l) 0 v.limbs

let red_xor v = popcount v land 1 = 1

let add a b =
  if a.width <> b.width then invalid_arg "Bitvec.add: width mismatch";
  let limbs = Array.make (Array.length a.limbs) 0 in
  let carry = ref 0 in
  for i = 0 to Array.length limbs - 1 do
    let s = a.limbs.(i) + b.limbs.(i) + !carry in
    limbs.(i) <- s land limb_mask;
    carry := s lsr limb_bits
  done;
  normalize { width = a.width; limbs }

let neg v = add (lognot v) (of_int ~width:v.width 1)
let sub a b = add a (neg b)
let succ v = add v (of_int ~width:v.width 1)

let concat hi lo =
  init (hi.width + lo.width) (fun i ->
      if i < lo.width then get lo i else get hi (i - lo.width))

let slice v ~hi ~lo =
  if lo < 0 || hi >= v.width || hi < lo then
    invalid_arg "Bitvec.slice: bad range";
  init (hi - lo + 1) (fun i -> get v (lo + i))

let shift_left v n =
  if n < 0 then invalid_arg "Bitvec.shift_left: negative shift";
  init v.width (fun i -> i >= n && get v (i - n))

let shift_right v n =
  if n < 0 then invalid_arg "Bitvec.shift_right: negative shift";
  init v.width (fun i -> i + n < v.width && get v (i + n))

let has_odd_parity v = red_xor v

let append_odd_parity v =
  let parity_bit = not (red_xor v) in
  concat (of_bool parity_bit) v

let corrupt_bit v i = set v i (not (get v i))
