(** DIMACS CNF interchange (the standard SAT-solver input format). *)

val parse : string -> (Cnf.t, string) result
(** Parse DIMACS text: comments ([c ...]), one [p cnf V C] header, clauses
    terminated by [0]. Clause count mismatches are reported as errors. *)

val of_file : string -> (Cnf.t, string) result
val to_file : Cnf.t -> string -> unit
