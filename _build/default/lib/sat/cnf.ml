type t = { nvars : int; clauses : int list list }

let create ~nvars clauses =
  List.iter
    (fun clause ->
      List.iter
        (fun lit ->
          if lit = 0 || abs lit > nvars then
            invalid_arg (Printf.sprintf "Cnf.create: bad literal %d" lit))
        clause)
    clauses;
  { nvars; clauses }

let num_clauses t = List.length t.clauses

let num_literals t =
  List.fold_left (fun acc c -> acc + List.length c) 0 t.clauses

let eval t assign =
  let lit_true lit = if lit > 0 then assign lit else not (assign (-lit)) in
  List.for_all (fun clause -> List.exists lit_true clause) t.clauses

let pp_dimacs ppf t =
  Format.fprintf ppf "p cnf %d %d@." t.nvars (num_clauses t);
  List.iter
    (fun clause ->
      List.iter (fun lit -> Format.fprintf ppf "%d " lit) clause;
      Format.fprintf ppf "0@.")
    t.clauses
