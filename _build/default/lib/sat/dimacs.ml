let parse text =
  let lines = String.split_on_char '\n' text in
  let header = ref None in
  let clauses = ref [] in
  let current = ref [] in
  let error = ref None in
  let report msg = if !error = None then error := Some msg in
  List.iteri
    (fun lineno line ->
      let line = String.trim line in
      if line = "" || line.[0] = 'c' then ()
      else if line.[0] = 'p' then begin
        match String.split_on_char ' ' line |> List.filter (( <> ) "") with
        | [ "p"; "cnf"; v; c ] -> (
          match (int_of_string_opt v, int_of_string_opt c) with
          | Some v, Some c ->
            if !header <> None then report "duplicate header"
            else header := Some (v, c)
          | _ -> report (Printf.sprintf "bad header on line %d" (lineno + 1)))
        | _ -> report (Printf.sprintf "bad header on line %d" (lineno + 1))
      end
      else
        String.split_on_char ' ' line
        |> List.filter (( <> ) "")
        |> List.iter (fun tok ->
               match int_of_string_opt tok with
               | None ->
                 report (Printf.sprintf "bad literal %S on line %d" tok (lineno + 1))
               | Some 0 ->
                 clauses := List.rev !current :: !clauses;
                 current := []
               | Some lit -> current := lit :: !current))
    lines;
  match !error with
  | Some msg -> Error msg
  | None -> (
    if !current <> [] then Error "unterminated clause (missing 0)"
    else
      match !header with
      | None -> Error "missing p cnf header"
      | Some (nvars, nclauses) ->
        let clauses = List.rev !clauses in
        if List.length clauses <> nclauses then
          Error
            (Printf.sprintf "header declares %d clauses, found %d" nclauses
               (List.length clauses))
        else (
          try Ok (Cnf.create ~nvars clauses)
          with Invalid_argument msg -> Error msg))

let of_file path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
    let len = in_channel_length ic in
    let text = really_input_string ic len in
    close_in ic;
    parse text

let to_file cnf path =
  let oc = open_out path in
  let ppf = Format.formatter_of_out_channel oc in
  Cnf.pp_dimacs ppf cnf;
  Format.pp_print_flush ppf ();
  close_out oc
