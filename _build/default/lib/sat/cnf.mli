(** CNF formulas in DIMACS convention: variables are [1 .. nvars], a literal
    is a non-zero integer whose sign is its polarity. *)

type t = { nvars : int; clauses : int list list }

val create : nvars:int -> int list list -> t
(** Validates that every literal is non-zero with [|lit| <= nvars]. *)

val num_clauses : t -> int
val num_literals : t -> int

val eval : t -> (int -> bool) -> bool
(** [eval cnf assign] under a total assignment of variables [1..nvars]. *)

val pp_dimacs : Format.formatter -> t -> unit
(** Standard DIMACS [p cnf] output. *)
