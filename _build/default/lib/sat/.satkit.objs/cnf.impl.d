lib/sat/cnf.ml: Format List Printf
