lib/sat/solver.ml: Array Cnf List
