lib/sat/tseitin.mli: Cnf Rtl
