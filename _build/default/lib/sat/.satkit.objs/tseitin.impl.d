lib/sat/tseitin.ml: Cnf Hashtbl List Rtl
