(** The full formal-verification campaign over the chip: every stereotype
    property of every leaf module, with the engine escalation the paper
    describes. Regenerates the data behind Table 2. *)

type prop_result = {
  category : string;
  module_name : string;
  vunit_name : string;
  prop_name : string;
  cls : Verifiable.Propgen.prop_class;
  outcome : Mc.Engine.outcome;
  bug : Chip.Bugs.id option;  (** bug seeded in the module, if any *)
}

type row = {
  cat : string;
  subs : int;
  bugs_found : int;  (** defective modules whose seeded bug was exposed *)
  p0 : int;
  p1 : int;
  p2 : int;
  p3 : int;
  total : int;
  proved : int;
  failed : int;
  resource_out : int;
  time_s : float;
}

type t = {
  results : prop_result list;
  rows : row list;  (** one per category, in A..E order *)
  grand_total : row;
  wall_time_s : float;
}

val run :
  ?budget:Mc.Engine.budget ->
  ?strategy:Mc.Engine.strategy ->
  ?progress:(done_:int -> total:int -> unit) ->
  Chip.Generator.t ->
  t

val failed_results : t -> prop_result list
val pp_table2 : Format.formatter -> t -> unit

val to_csv : t -> string
(** One row per property: category, module, vunit, property, class, verdict,
    engine, time. Suitable for spreadsheet import or regression diffing. *)

val write_csv : t -> string -> unit
