(** The design flow of Figure 5, front-end side.

    Logic designers release Verifiable RTL (lint-clean, with error-injection
    ports) plus the data-integrity specification; the formal verification
    engineer turns the specification into PSL, model-checks every leaf
    module, and feeds failures back. *)

type release = {
  info : Verifiable.Transform.info;
  spec : Verifiable.Propgen.spec;
  vunits : (Verifiable.Propgen.prop_class * Psl.Ast.vunit) list;
  psl_text : string;  (** the released PSL, as the designer would read it *)
}

val release_verifiable_rtl :
  Rtl.Mdl.t ->
  spec:Verifiable.Propgen.spec ->
  (release, Rtl.Check.issue list) result
(** The designer's task: lint the module, apply the injection transform, and
    generate the stereotype vunits. Returns the lint issues if the module is
    not release-clean. *)

val release_verifiable_rtl_auto :
  Rtl.Mdl.t -> (release, Rtl.Check.issue list) result
(** Like {!release_verifiable_rtl} but with the integrity specification
    inferred from the RTL structure ({!Verifiable.Spec_infer}) instead of
    written by the designer — the "automatic assertion extraction" the
    paper left as future work. An inference failure is reported as a single
    lint issue. *)

type feedback = {
  prop_name : string;
  cls : Verifiable.Propgen.prop_class;
  outcome : Mc.Engine.outcome;
}

val verify_release :
  ?budget:Mc.Engine.budget ->
  ?strategy:Mc.Engine.strategy ->
  release ->
  feedback list
(** The verification engineer's task: model-check every assert of every
    vunit and collect the results for feedback. *)

val failures : feedback list -> feedback list
val pp_feedback : Format.formatter -> feedback -> unit
