(** Sequential equivalence checking by product-machine construction.

    Two modules with the same input/output interface (after tying designated
    inputs to constants) are instantiated side by side, fed identical
    stimulus, and the invariant "all common outputs agree in every reachable
    state" is model-checked. The flagship use is proving the paper's central
    safety claim — the Verifiable-RTL transform with its injection ports
    tied to zero is *equivalent* to the original RTL, not merely
    simulation-identical. *)

type mismatch = { output : string; trace : Mc.Trace.t }

type result =
  | Equivalent
  | Different of mismatch
  | Undecided of string

val check_modules :
  ?budget:Mc.Engine.budget ->
  ?strategy:Mc.Engine.strategy ->
  a:Rtl.Mdl.t ->
  b:Rtl.Mdl.t ->
  ?tie_a:(string * Bitvec.t) list ->
  ?tie_b:(string * Bitvec.t) list ->
  unit ->
  result
(** After removing tied inputs, both modules must expose the same input and
    output ports (names and widths); raises [Invalid_argument] otherwise.
    The counterexample trace (over the shared inputs) distinguishes the two
    machines from reset. [strategy] defaults to forward BDD reachability:
    the reachable set of an equivalence product machine hugs the diagonal
    (corresponding registers equal), which forward traversal represents
    compactly, while backward traversal must regress the huge inequality
    set. *)

val check_transform_against :
  ?budget:Mc.Engine.budget ->
  original:Rtl.Mdl.t ->
  Verifiable.Transform.info ->
  result
(** [check_transform_against ~original info] proves [original] equivalent to
    [info.mdl] with [EC]/[ED] tied to zero. *)
