(** Reporting for the remaining paper artifacts: Table 1 (chip overview),
    Table 4 (area cost of the injection feature), the selector-delay timing
    analysis, and the Figure 7 divide-and-conquer experiment. *)

val table1 : Chip.Generator.t -> (string * string) list
(** Item/implementation pairs in the style of Table 1. Gate count is
    measured from the synthesized netlist; die size and technology are
    reported as the configured process targets. *)

val pp_table1 : Format.formatter -> (string * string) list -> unit

type area_row = { cat : string; base_ge : float; ver_ge : float; increase_pct : float }

val table4 : Chip.Generator.t -> area_row list
(** One row per category (the paper publishes A, B and D). *)

val pp_table4 : Format.formatter -> area_row list -> unit

type timing = {
  base_path_ps : float;
  ver_path_ps : float;
  selector_delay_ps : float;
  period_ps : float;
  selector_pct_of_path : float;
  meets_timing : bool;
}

val timing_impact : Chip.Generator.t -> timing
(** Static timing on the representative ALU leaf, with and without the
    injection selector (the paper: ~200 ps, ~4% of total delay at 250 MHz,
    no timing-closure issue). *)

val pp_timing : Format.formatter -> timing -> unit

type fig7_outcome = {
  piece : string;
  verdict : string;
  engine : string;
  state_bits : int;
  work_nodes : int;
  time_s : float;
}

val fig7 : ?payload_width:int -> ?node_limit:int -> unit -> fig7_outcome list
(** Run the Figure 7 experiment on a wide merge module: the monolithic
    output-integrity property exhausts the BDD node budget; the four
    partitioned pieces each verify within the same budget. *)

val pp_fig7 : Format.formatter -> fig7_outcome list -> unit
