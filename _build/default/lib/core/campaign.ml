module PG = Verifiable.Propgen
module G = Chip.Generator

type prop_result = {
  category : string;
  module_name : string;
  vunit_name : string;
  prop_name : string;
  cls : PG.prop_class;
  outcome : Mc.Engine.outcome;
  bug : Chip.Bugs.id option;
}

type row = {
  cat : string;
  subs : int;
  bugs_found : int;
  p0 : int;
  p1 : int;
  p2 : int;
  p3 : int;
  total : int;
  proved : int;
  failed : int;
  resource_out : int;
  time_s : float;
}

type t = {
  results : prop_result list;
  rows : row list;
  grand_total : row;
  wall_time_s : float;
}

let count_asserts units =
  List.fold_left
    (fun acc (u : G.unit_) ->
      let p0, p1, p2, p3 = PG.counts u.G.info u.G.spec in
      acc + p0 + p1 + p2 + p3)
    0 units

let run ?budget ?strategy ?(progress = fun ~done_:_ ~total:_ -> ()) (chip : G.t) =
  let t0 = Unix.gettimeofday () in
  let total =
    List.fold_left (fun acc c -> acc + count_asserts c.G.units) 0 chip.G.categories
  in
  let done_ = ref 0 in
  let results =
    List.concat_map
      (fun (c : G.category) ->
        List.concat_map
          (fun (u : G.unit_) ->
            let vunits = PG.all u.G.info u.G.spec in
            List.concat_map
              (fun (cls, vunit) ->
                List.map
                  (fun (prop_name, outcome) ->
                    incr done_;
                    progress ~done_:!done_ ~total;
                    { category = c.G.cat_name;
                      module_name = u.G.info.Verifiable.Transform.mdl.Rtl.Mdl.name;
                      vunit_name = vunit.Psl.Ast.vunit_name; prop_name; cls;
                      outcome; bug = u.G.leaf.Chip.Archetype.bug })
                  (Mc.Engine.check_vunit ?budget ?strategy
                     u.G.info.Verifiable.Transform.mdl vunit))
              vunits)
          c.G.units)
      chip.G.categories
  in
  let row_of cat subs cat_results =
    let by f = List.length (List.filter f cat_results) in
    let count_cls cls = by (fun r -> r.cls = cls) in
    let failed_modules =
      List.sort_uniq compare
        (List.filter_map
           (fun r ->
             match r.outcome.Mc.Engine.verdict with
             | Mc.Engine.Failed _ -> Some r.module_name
             | Mc.Engine.Proved | Mc.Engine.Proved_bounded _
             | Mc.Engine.Resource_out _ ->
               None)
           cat_results)
    in
    (* B5/B6 live in separate decoder modules, so defects = defective
       modules here; the paper also counts defects *)
    { cat; subs; bugs_found = List.length failed_modules;
      p0 = count_cls PG.P0; p1 = count_cls PG.P1; p2 = count_cls PG.P2;
      p3 = count_cls PG.P3; total = List.length cat_results;
      proved =
        by (fun r ->
            match r.outcome.Mc.Engine.verdict with
            | Mc.Engine.Proved | Mc.Engine.Proved_bounded _ -> true
            | Mc.Engine.Failed _ | Mc.Engine.Resource_out _ -> false);
      failed =
        by (fun r ->
            match r.outcome.Mc.Engine.verdict with
            | Mc.Engine.Failed _ -> true
            | Mc.Engine.Proved | Mc.Engine.Proved_bounded _
            | Mc.Engine.Resource_out _ -> false);
      resource_out =
        by (fun r ->
            match r.outcome.Mc.Engine.verdict with
            | Mc.Engine.Resource_out _ -> true
            | Mc.Engine.Proved | Mc.Engine.Proved_bounded _
            | Mc.Engine.Failed _ -> false);
      time_s =
        List.fold_left (fun acc r -> acc +. r.outcome.Mc.Engine.time_s) 0.0
          cat_results }
  in
  let rows =
    List.map
      (fun (c : G.category) ->
        row_of c.G.cat_name (List.length c.G.units)
          (List.filter (fun r -> r.category = c.G.cat_name) results))
      chip.G.categories
  in
  let grand_total =
    { cat = "Total"; subs = List.fold_left (fun a r -> a + r.subs) 0 rows;
      bugs_found = List.fold_left (fun a r -> a + r.bugs_found) 0 rows;
      p0 = List.fold_left (fun a r -> a + r.p0) 0 rows;
      p1 = List.fold_left (fun a r -> a + r.p1) 0 rows;
      p2 = List.fold_left (fun a r -> a + r.p2) 0 rows;
      p3 = List.fold_left (fun a r -> a + r.p3) 0 rows;
      total = List.fold_left (fun a r -> a + r.total) 0 rows;
      proved = List.fold_left (fun a r -> a + r.proved) 0 rows;
      failed = List.fold_left (fun a r -> a + r.failed) 0 rows;
      resource_out = List.fold_left (fun a r -> a + r.resource_out) 0 rows;
      time_s = List.fold_left (fun a r -> a +. r.time_s) 0.0 rows }
  in
  { results; rows; grand_total; wall_time_s = Unix.gettimeofday () -. t0 }

let failed_results t =
  List.filter
    (fun r ->
      match r.outcome.Mc.Engine.verdict with
      | Mc.Engine.Failed _ -> true
      | Mc.Engine.Proved | Mc.Engine.Proved_bounded _
      | Mc.Engine.Resource_out _ ->
        false)
    t.results

let to_csv t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    "category,module,vunit,property,class,verdict,engine,time_s,bug\n";
  List.iter
    (fun r ->
      let verdict =
        match r.outcome.Mc.Engine.verdict with
        | Mc.Engine.Proved -> "proved"
        | Mc.Engine.Proved_bounded d -> Printf.sprintf "bounded:%d" d
        | Mc.Engine.Failed _ -> "failed"
        | Mc.Engine.Resource_out msg -> "resource_out:" ^ msg
      in
      Buffer.add_string buf
        (Printf.sprintf "%s,%s,%s,%s,%s,%s,%s,%.4f,%s\n" r.category
           r.module_name r.vunit_name r.prop_name
           (Verifiable.Propgen.class_name r.cls)
           verdict r.outcome.Mc.Engine.engine_used r.outcome.Mc.Engine.time_s
           (match r.bug with Some b -> Chip.Bugs.name b | None -> "")))
    t.results;
  Buffer.contents buf

let write_csv t path =
  let oc = open_out path in
  (try output_string oc (to_csv t)
   with e ->
     close_out oc;
     raise e);
  close_out oc

let pp_table2 ppf t =
  Format.fprintf ppf
    "Module    # of   # of   P0     P1     P2     P3     Total  Time(s)@.";
  Format.fprintf ppf
    "Name      Sub    Bug@.";
  let line (r : row) =
    Format.fprintf ppf "%-9s %-6d %-6d %-6d %-6d %-6d %-6d %-6d %.1f@." r.cat
      r.subs r.bugs_found r.p0 r.p1 r.p2 r.p3 r.total r.time_s
  in
  List.iter line t.rows;
  line t.grand_total
