(** Bug classification — regenerates Table 3: which property type exposes
    each seeded bug, and whether conventional random simulation would have
    found it easily.

    Formal side: model-check the bug module's stereotype properties and
    record the failing one. Simulation side: compile the same property
    monitor into the module, drive it with the *realistic* testbench model
    (legal parity codewords, software conventions, the macro's behavioral
    model) for a cycle budget across several seeds, and call the bug "easily
    found" when the monitor fires in at least half the runs. *)

type result = {
  bug : Chip.Bugs.id;
  module_name : string;
  prop_name : string option;  (** the failing property, when formal found it *)
  observed_cls : Verifiable.Propgen.prop_class option;
  formal_found : bool;
  formal_time_s : float;
  trace_len : int option;
  sim_runs : int;
  sim_found_runs : int;
  sim_first_fire : int option;  (** earliest firing cycle across runs *)
  sim_easy : bool;
  expected_cls : Verifiable.Propgen.prop_class;
  expected_easy : bool;
}

val run :
  ?budget:Mc.Engine.budget ->
  ?cycles:int ->
  ?seeds:int list ->
  Chip.Generator.t ->
  result list
(** [cycles] defaults to 10_000 per run; [seeds] to five fixed seeds. The
    chip must have been generated [with_bugs]. *)

val pp_table3 : Format.formatter -> result list -> unit
