lib/core/campaign.mli: Chip Format Mc Verifiable
