lib/core/classify.ml: Bitvec Chip Format List Mc Printf Psl Random Rtl Sim Verifiable
