lib/core/campaign.ml: Buffer Chip Format List Mc Printf Psl Rtl Unix Verifiable
