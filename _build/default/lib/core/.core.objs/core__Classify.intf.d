lib/core/classify.mli: Chip Format Mc Verifiable
