lib/core/equiv.ml: Bitvec List Mc Printf Rtl String Verifiable
