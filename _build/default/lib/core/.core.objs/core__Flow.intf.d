lib/core/flow.mli: Format Mc Psl Rtl Verifiable
