lib/core/report.ml: Chip Format List Mc Printf Psl Rtl Synth Verifiable
