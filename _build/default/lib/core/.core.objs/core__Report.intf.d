lib/core/report.mli: Chip Format
