lib/core/flow.ml: Format List Mc Printf Psl Rtl String Verifiable
