lib/core/equiv.mli: Bitvec Mc Rtl Verifiable
