type sere =
  | Sbool of Rtl.Expr.t
  | Sconcat of sere * sere
  | Srepeat of sere * int

type fl =
  | Bool of Rtl.Expr.t
  | Not of fl
  | And of fl * fl
  | Or of fl * fl
  | Implies of fl * fl
  | Next of fl
  | Next_n of int * fl
  | Always of fl
  | Never of fl
  | Until of fl * fl
  | Seq_implies of sere * bool * fl
  | Eventually of fl

type direction = Assert | Assume

type decl = { prop_name : string; body : fl; comment : string option }

type directive = { dir : direction; target : string }

type vunit = {
  vunit_name : string;
  bound_module : string;
  decls : decl list;
  directives : directive list;
}

let property v name =
  let d = List.find (fun d -> d.prop_name = name) v.decls in
  d.body

let by_direction dir v =
  List.filter_map
    (fun (dve : directive) ->
      if dve.dir = dir then Some (dve.target, property v dve.target) else None)
    v.directives

let asserts v = by_direction Assert v
let assumes v = by_direction Assume v

let rec map_bool_sere f = function
  | Sbool e -> Sbool (f e)
  | Sconcat (a, b) -> Sconcat (map_bool_sere f a, map_bool_sere f b)
  | Srepeat (a, n) -> Srepeat (map_bool_sere f a, n)

let rec map_bool f = function
  | Bool e -> Bool (f e)
  | Not g -> Not (map_bool f g)
  | And (g, h) -> And (map_bool f g, map_bool f h)
  | Or (g, h) -> Or (map_bool f g, map_bool f h)
  | Implies (g, h) -> Implies (map_bool f g, map_bool f h)
  | Next g -> Next (map_bool f g)
  | Next_n (n, g) -> Next_n (n, map_bool f g)
  | Always g -> Always (map_bool f g)
  | Never g -> Never (map_bool f g)
  | Until (g, h) -> Until (map_bool f g, map_bool f h)
  | Seq_implies (s, overlap, g) ->
    Seq_implies (map_bool_sere f s, overlap, map_bool f g)
  | Eventually g -> Eventually (map_bool f g)

let rec expand_sere = function
  | Sbool e -> [ e ]
  | Sconcat (a, b) -> expand_sere a @ expand_sere b
  | Srepeat (a, n) ->
    if n < 1 then invalid_arg "Ast.expand_sere: repetition count must be >= 1";
    List.concat (List.init n (fun _ -> expand_sere a))

let sere_length s = List.length (expand_sere s)

let rec pure_boolean = function
  | Bool _ -> true
  | Not f -> pure_boolean f
  | And (f, g) | Or (f, g) -> pure_boolean f && pure_boolean g
  | Implies (f, g) -> pure_boolean f && pure_boolean g
  | Next _ | Next_n _ | Always _ | Never _ | Until _ | Seq_implies _
  | Eventually _ ->
    false

let rec is_safety = function
  | Bool _ -> true
  | Not f -> pure_boolean f
  | And (f, g) -> is_safety f && is_safety g
  | Or (f, g) ->
    (pure_boolean f && is_safety g) || (pure_boolean g && is_safety f)
  | Implies (f, g) -> pure_boolean f && is_safety g
  | Next f | Next_n (_, f) | Always f -> is_safety f
  | Never f -> pure_boolean f
  | Until (p, q) -> is_safety p && pure_boolean q
  | Seq_implies (_, _, g) -> is_safety g
  | Eventually _ -> false

let rec size = function
  | Bool _ -> 1
  | Not f | Next f | Next_n (_, f) | Always f | Never f | Eventually f ->
    1 + size f
  | And (f, g) | Or (f, g) | Implies (f, g) | Until (f, g) ->
    1 + size f + size g
  | Seq_implies (s, _, f) -> 1 + sere_length s + size f

module String_set = Set.Make (String)

let signals fl =
  let add_expr acc e =
    List.fold_left (fun s x -> String_set.add x s) acc (Rtl.Expr.support e)
  in
  let rec go acc = function
    | Bool e -> add_expr acc e
    | Not f | Next f | Next_n (_, f) | Always f | Never f | Eventually f ->
      go acc f
    | And (f, g) | Or (f, g) | Implies (f, g) | Until (f, g) ->
      go (go acc f) g
    | Seq_implies (s, _, f) ->
      go (List.fold_left add_expr acc (expand_sere s)) f
  in
  String_set.elements (go String_set.empty fl)
