(** PSL pretty-printing in the paper's concrete syntax. Output re-parses to
    an equal AST (modulo boolean-layer folding done by the parser). *)

val pp_fl : Format.formatter -> Ast.fl -> unit
val pp_vunit : Format.formatter -> Ast.vunit -> unit
val fl_to_string : Ast.fl -> string
val vunit_to_string : Ast.vunit -> string
