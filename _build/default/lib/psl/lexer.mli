(** Hand-written lexer for the PSL subset.

    Comments ([// ...] and [/* ... */]) are skipped; the trailing [//]
    comment of a [property] line is captured and attached by the parser. *)

type token =
  | IDENT of string
  | INT of int
  | BINCONST of int * string  (** width, bits, e.g. 4'b1010 *)
  | KW_VUNIT
  | KW_PROPERTY
  | KW_ASSERT
  | KW_ASSUME
  | KW_ALWAYS
  | KW_NEVER
  | KW_NEXT
  | KW_UNTIL
  | KW_EVENTUALLY  (** [eventually!] *)
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | SEMI
  | COLON
  | EQ  (** [=] *)
  | EQEQ
  | NEQ
  | LT
  | ARROW  (** [->] *)
  | PIPE_ARROW  (** [|->], overlapping suffix implication *)
  | PIPE_FATARROW  (** [|=>], non-overlapping suffix implication *)
  | STAR
  | AMP
  | AMPAMP
  | BAR
  | BARBAR
  | CARET
  | TILDE
  | BANG
  | EOF

exception Error of string * int
(** Message and character offset. *)

type t

val of_string : string -> t
val peek : t -> token
val peek2 : t -> token
(** The token after {!peek}, without consuming anything. *)

val next : t -> token
val pos : t -> int
val last_comment : t -> string option
(** The most recent [//] comment consumed before the current token. *)

val pp_token : Format.formatter -> token -> unit
