(** Recursive-descent parser for the PSL subset in the paper's figures, e.g.

    {v
 vunit M_edetect (M) { // check error detection ability
   property pCheck1 = always ((EC & ~(^ED)) -> next HE);
   assert pCheck1;
 }
    v}

    Both prefix [^I] and the paper's postfix [I^] spellings of XOR reduction
    are accepted. *)

exception Error of string * int
(** Message and character offset. *)

val vunits_of_string : string -> Ast.vunit list
val fl_of_string : string -> Ast.fl
