exception Unsupported of string

module E = Rtl.Expr
module M = Rtl.Mdl

type instrumented = {
  mdl : M.t;
  fail_signal : string;
  assume_fail_now : string;
  assume_failed_before : string;
  invariant_ok : string;
}

type state = { mutable m : M.t; mutable fresh : int; prefix : string }

let fresh_name st stem =
  let n = st.fresh in
  st.fresh <- n + 1;
  Printf.sprintf "%s_%s%d" st.prefix stem n

let add_wire st stem e =
  let name = fresh_name st stem in
  st.m <- M.add_wire st.m name 1;
  st.m <- M.add_assign st.m name e;
  E.var name

(* A 1-bit monitor register with the given next function, reset to 0. *)
let add_delay st next =
  let name = fresh_name st "r" in
  st.m <- M.add_reg st.m name 1 next;
  E.var name

let rec bexpr_of_pure (f : Ast.fl) =
  match f with
  | Ast.Bool e -> Some e
  | Ast.Not f ->
    Option.map (fun e -> E.( !: ) e) (bexpr_of_pure f)
  | Ast.And (f, g) -> (
    match (bexpr_of_pure f, bexpr_of_pure g) with
    | Some a, Some b -> Some E.(a &: b)
    | _, _ -> None)
  | Ast.Or (f, g) -> (
    match (bexpr_of_pure f, bexpr_of_pure g) with
    | Some a, Some b -> Some E.(a |: b)
    | _, _ -> None)
  | Ast.Implies (f, g) -> (
    match (bexpr_of_pure f, bexpr_of_pure g) with
    | Some a, Some b -> Some E.(!:a |: b)
    | _, _ -> None)
  | Ast.Next _ | Ast.Next_n _ | Ast.Always _ | Ast.Never _ | Ast.Until _
  | Ast.Seq_implies _ | Ast.Eventually _ ->
    None

let check_one_bit st e =
  let env name = M.signal_width st.m name in
  match E.width ~env e with
  | 1 -> ()
  | w ->
    raise
      (Unsupported
         (Printf.sprintf "boolean layer expression %s has width %d, expected 1"
            (E.to_string e) w))
  | exception Invalid_argument msg -> raise (Unsupported msg)
  | exception Not_found ->
    raise
      (Unsupported
         (Printf.sprintf "property references undeclared signal in %s"
            (E.to_string e)))

(* [compile st act f] returns the fail expression of [f] under activation
   signal [act]: high in exactly the cycles where an obligation created by an
   activation is violated. *)
let rec compile st (act : E.t) (f : Ast.fl) : E.t =
  match bexpr_of_pure f with
  | Some b ->
    check_one_bit st b;
    E.(act &: !:b)
  | None -> (
    match f with
    | Ast.Bool _ -> assert false (* handled by bexpr_of_pure *)
    | Ast.Not _ ->
      raise (Unsupported "negation of a temporal formula is not a safety form")
    | Ast.And (f, g) ->
      let fail_f = compile st act f in
      let fail_g = compile st act g in
      E.(fail_f |: fail_g)
    | Ast.Or (f, g) -> (
      match bexpr_of_pure f with
      | Some b ->
        check_one_bit st b;
        compile st E.(act &: !:b) g
      | None -> (
        match bexpr_of_pure g with
        | Some b ->
          check_one_bit st b;
          compile st E.(act &: !:b) f
        | None ->
          raise
            (Unsupported
               "disjunction of two temporal formulas is not monitorable")))
    | Ast.Implies (f, g) -> (
      match bexpr_of_pure f with
      | Some b ->
        check_one_bit st b;
        compile st E.(act &: b) g
      | None ->
        raise (Unsupported "implication with a temporal antecedent"))
    | Ast.Next f ->
      let act' = add_delay st act in
      compile st act' f
    | Ast.Next_n (n, f) ->
      if n < 0 then raise (Unsupported "negative next[n]");
      let rec delay act k = if k = 0 then act else delay (add_delay st act) (k - 1) in
      compile st (delay act n) f
    | Ast.Always f ->
      (* once activated, active forever *)
      let latched = fresh_name st "always" in
      st.m <- M.add_reg st.m latched 1 E.(var latched |: act);
      compile st E.(var latched |: act) f
    | Ast.Never f -> (
      match bexpr_of_pure f with
      | Some b -> compile st act (Ast.Always (Ast.Bool E.(!:b)))
      | None -> raise (Unsupported "never of a temporal formula"))
    | Ast.Until (p, q) -> (
      match bexpr_of_pure q with
      | Some bq ->
        check_one_bit st bq;
        (* weak until: while the region is open and q has not yet held,
           p is obligated this cycle *)
        let region = fresh_name st "until" in
        st.m <-
          M.add_reg st.m region 1 E.((var region |: act) &: !:bq);
        let open_now = add_wire st "region" E.(var region |: act) in
        compile st E.(open_now &: !:bq) p
      | None -> raise (Unsupported "until with a temporal right operand"))
    | Ast.Seq_implies (sere, overlap, g) -> (
      (* fixed-length SERE match pipeline: m_i is high when the first i+1
         obligations matched ending now; the consequent activates at the
         match end (|->) or one cycle later (|=>) *)
      match Ast.expand_sere sere with
      | [] -> assert false (* expand_sere returns at least one element *)
      | b0 :: rest ->
        check_one_bit st b0;
        let m0 = E.(act &: b0) in
        let m_end =
          List.fold_left
            (fun m b ->
              check_one_bit st b;
              E.(add_delay st m &: b))
            m0 rest
        in
        let act' = if overlap then m_end else add_delay st m_end in
        compile st act' g)
    | Ast.Eventually _ ->
      raise
        (Unsupported
           "eventually! is a liveness property; the data-integrity \
            methodology uses the safety subset only"))

let instrument mdl ~prefix ~assert_ ~assumes =
  List.iter
    (fun (name, _) ->
      if String.length name >= String.length prefix
         && String.sub name 0 (String.length prefix) = prefix
      then
        invalid_arg
          (Printf.sprintf "Monitor.instrument: prefix %s collides with signal %s"
             prefix name))
    (M.declared_signals mdl);
  let st = { m = mdl; fresh = 0; prefix } in
  (* activation pulse: high in the first cycle after reset only *)
  let first_done = fresh_name st "started" in
  st.m <- M.add_reg st.m first_done 1 E.tru;
  let act0 = E.(!:(var first_done)) in
  let fail_e = compile st act0 assert_ in
  let assume_fails = List.map (fun a -> compile st act0 a) assumes in
  let fail_signal = prefix ^ "_fail" in
  st.m <- M.add_wire st.m fail_signal 1;
  st.m <- M.add_assign st.m fail_signal fail_e;
  let assume_fail_now = prefix ^ "_assume_fail" in
  st.m <- M.add_wire st.m assume_fail_now 1;
  st.m <-
    M.add_assign st.m assume_fail_now
      (List.fold_left (fun acc e -> E.(acc |: e)) E.fls assume_fails);
  let assume_failed_before = prefix ^ "_assume_failed_q" in
  st.m <-
    M.add_reg st.m assume_failed_before 1
      E.(var assume_failed_before |: var assume_fail_now);
  let invariant_ok = prefix ^ "_ok" in
  st.m <- M.add_wire st.m invariant_ok 1;
  st.m <-
    M.add_assign st.m invariant_ok
      E.(!:(var fail_signal
            &: !:(var assume_fail_now)
            &: !:(var assume_failed_before)));
  { mdl = st.m; fail_signal; assume_fail_now; assume_failed_before;
    invariant_ok }

let monitor_register_count inst =
  (* monitor registers all carry the instrumentation prefix, recoverable
     from the fail signal's name *)
  let prefix =
    String.sub inst.fail_signal 0 (String.length inst.fail_signal - 5)
  in
  let has_prefix name =
    String.length name >= String.length prefix
    && String.sub name 0 (String.length prefix) = prefix
  in
  List.length
    (List.filter (fun (r : M.reg) -> has_prefix r.M.reg_name) inst.mdl.M.regs)
