(** Reference finite-trace semantics for the PSL safety subset.

    [holds] evaluates a formula over a recorded trace with the *weak*
    interpretation at the trace end: obligations that fall beyond the last
    cycle are vacuously satisfied, matching a monitor that simply has not
    fired yet. This is the executable specification the synthesized
    monitors ({!Monitor}) are tested against, and a convenient way to check
    assertions over simulation dumps without instrumenting the design. *)

exception Unsupported of string
(** Raised on [eventually!] (no finite-trace verdict under the weak view
    would be meaningful). *)

val holds :
  lookup:(int -> string -> Bitvec.t) -> length:int -> ?at:int -> Ast.fl -> bool
(** [holds ~lookup ~length f] evaluates [f] at cycle [at] (default 0) of a
    trace of [length] cycles; [lookup t name] gives the value of a signal at
    cycle [t]. Raises [Invalid_argument] if a boolean-layer expression is
    not 1 bit wide. *)

val holds_recorded : (string * Bitvec.t) list list -> Ast.fl -> bool
(** [holds_recorded cycles f] over an explicit list of per-cycle signal
    valuations (all referenced signals must be present in each cycle). *)
