exception Unsupported of string

let bool_at lookup t e =
  let env name = lookup t name in
  let v = Rtl.Expr.eval ~env e in
  if Bitvec.width v <> 1 then
    invalid_arg
      (Printf.sprintf "Interp: boolean layer expression has width %d"
         (Bitvec.width v));
  Bitvec.get v 0

let holds ~lookup ~length ?(at = 0) f =
  let rec go t (f : Ast.fl) =
    if t >= length then true
    else
      match f with
      | Ast.Bool e -> bool_at lookup t e
      | Ast.Not g -> not (go t g)
      | Ast.And (g, h) -> go t g && go t h
      | Ast.Or (g, h) -> go t g || go t h
      | Ast.Implies (g, h) -> (not (go t g)) || go t h
      | Ast.Next g -> go (t + 1) g
      | Ast.Next_n (n, g) -> go (t + n) g
      | Ast.Always g ->
        let rec all k = k >= length || (go k g && all (k + 1)) in
        all t
      | Ast.Never g ->
        let rec none k = k >= length || ((not (go k g)) && none (k + 1)) in
        none t
      | Ast.Until (p, q) ->
        (* weak until *)
        let rec scan k =
          if k >= length then true
          else if go k q then true
          else go k p && scan (k + 1)
        in
        scan t
      | Ast.Seq_implies (sere, overlap, g) ->
        (* fixed-length SERE: the only possible match window is
           [t .. t + n - 1]; weak at the trace end *)
        let bs = Ast.expand_sere sere in
        let n = List.length bs in
        if t + n > length then true
        else if List.for_all2 (fun i b -> bool_at lookup (t + i) b)
                  (List.init n Fun.id) bs
        then go (t + n - 1 + if overlap then 0 else 1) g
        else true
      | Ast.Eventually _ ->
        raise (Unsupported "eventually! has no weak finite-trace verdict")
  in
  go at f

let holds_recorded cycles f =
  let arr = Array.of_list cycles in
  let lookup t name =
    match List.assoc_opt name arr.(t) with
    | Some v -> v
    | None -> invalid_arg (Printf.sprintf "Interp: %s missing at cycle %d" name t)
  in
  holds ~lookup ~length:(Array.length arr) f
