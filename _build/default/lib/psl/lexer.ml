type token =
  | IDENT of string
  | INT of int
  | BINCONST of int * string
  | KW_VUNIT
  | KW_PROPERTY
  | KW_ASSERT
  | KW_ASSUME
  | KW_ALWAYS
  | KW_NEVER
  | KW_NEXT
  | KW_UNTIL
  | KW_EVENTUALLY
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | SEMI
  | COLON
  | EQ
  | EQEQ
  | NEQ
  | LT
  | ARROW
  | PIPE_ARROW
  | PIPE_FATARROW
  | STAR
  | AMP
  | AMPAMP
  | BAR
  | BARBAR
  | CARET
  | TILDE
  | BANG
  | EOF

exception Error of string * int

type t = {
  src : string;
  mutable off : int;
  mutable tok : token;
  mutable tok_pos : int;
  mutable comment : string option;
}

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let keyword = function
  | "vunit" -> Some KW_VUNIT
  | "property" -> Some KW_PROPERTY
  | "assert" -> Some KW_ASSERT
  | "assume" -> Some KW_ASSUME
  | "always" -> Some KW_ALWAYS
  | "never" -> Some KW_NEVER
  | "next" -> Some KW_NEXT
  | "until" -> Some KW_UNTIL
  | _ -> None

let rec scan t =
  let n = String.length t.src in
  if t.off >= n then EOF
  else
    let c = t.src.[t.off] in
    match c with
    | ' ' | '\t' | '\n' | '\r' ->
      t.off <- t.off + 1;
      scan t
    | '/' when t.off + 1 < n && t.src.[t.off + 1] = '/' ->
      let start = t.off + 2 in
      let rec eol i = if i >= n || t.src.[i] = '\n' then i else eol (i + 1) in
      let stop = eol start in
      t.comment <- Some (String.trim (String.sub t.src start (stop - start)));
      t.off <- stop;
      scan t
    | '/' when t.off + 1 < n && t.src.[t.off + 1] = '*' ->
      let rec close i =
        if i + 1 >= n then raise (Error ("unterminated comment", t.off))
        else if t.src.[i] = '*' && t.src.[i + 1] = '/' then i + 2
        else close (i + 1)
      in
      t.off <- close (t.off + 2);
      scan t
    | '(' -> t.off <- t.off + 1; LPAREN
    | ')' -> t.off <- t.off + 1; RPAREN
    | '{' -> t.off <- t.off + 1; LBRACE
    | '}' -> t.off <- t.off + 1; RBRACE
    | '[' -> t.off <- t.off + 1; LBRACKET
    | ']' -> t.off <- t.off + 1; RBRACKET
    | ';' -> t.off <- t.off + 1; SEMI
    | ':' -> t.off <- t.off + 1; COLON
    | '^' -> t.off <- t.off + 1; CARET
    | '*' -> t.off <- t.off + 1; STAR
    | '~' -> t.off <- t.off + 1; TILDE
    | '=' ->
      if t.off + 1 < n && t.src.[t.off + 1] = '=' then begin
        t.off <- t.off + 2;
        EQEQ
      end
      else begin
        t.off <- t.off + 1;
        EQ
      end
    | '!' ->
      if t.off + 1 < n && t.src.[t.off + 1] = '=' then begin
        t.off <- t.off + 2;
        NEQ
      end
      else begin
        t.off <- t.off + 1;
        BANG
      end
    | '<' -> t.off <- t.off + 1; LT
    | '-' ->
      if t.off + 1 < n && t.src.[t.off + 1] = '>' then begin
        t.off <- t.off + 2;
        ARROW
      end
      else raise (Error ("unexpected '-'", t.off))
    | '&' ->
      if t.off + 1 < n && t.src.[t.off + 1] = '&' then begin
        t.off <- t.off + 2;
        AMPAMP
      end
      else begin
        t.off <- t.off + 1;
        AMP
      end
    | '|' ->
      if t.off + 2 < n && t.src.[t.off + 1] = '-' && t.src.[t.off + 2] = '>'
      then begin
        t.off <- t.off + 3;
        PIPE_ARROW
      end
      else if t.off + 2 < n && t.src.[t.off + 1] = '='
              && t.src.[t.off + 2] = '>'
      then begin
        t.off <- t.off + 3;
        PIPE_FATARROW
      end
      else if t.off + 1 < n && t.src.[t.off + 1] = '|' then begin
        t.off <- t.off + 2;
        BARBAR
      end
      else begin
        t.off <- t.off + 1;
        BAR
      end
    | c when is_digit c ->
      let start = t.off in
      let rec digits i = if i < n && is_digit t.src.[i] then digits (i + 1) else i in
      let stop = digits t.off in
      let value = int_of_string (String.sub t.src start (stop - start)) in
      if stop < n && t.src.[stop] = '\'' then begin
        if stop + 1 >= n || (t.src.[stop + 1] <> 'b' && t.src.[stop + 1] <> 'B')
        then raise (Error ("expected 'b' in sized constant", stop));
        let bstart = stop + 2 in
        let rec bits i =
          if i < n && (t.src.[i] = '0' || t.src.[i] = '1' || t.src.[i] = '_')
          then bits (i + 1)
          else i
        in
        let bstop = bits bstart in
        if bstop = bstart then raise (Error ("empty binary constant", bstart));
        t.off <- bstop;
        BINCONST (value, String.sub t.src bstart (bstop - bstart))
      end
      else begin
        t.off <- stop;
        INT value
      end
    | c when is_ident_start c ->
      let start = t.off in
      let rec chars i =
        if i < n && is_ident_char t.src.[i] then chars (i + 1) else i
      in
      let stop = chars t.off in
      t.off <- stop;
      let word = String.sub t.src start (stop - start) in
      if word = "eventually" && stop < n && t.src.[stop] = '!' then begin
        t.off <- stop + 1;
        KW_EVENTUALLY
      end
      else begin
        match keyword word with Some k -> k | None -> IDENT word
      end
    | c -> raise (Error (Printf.sprintf "unexpected character %C" c, t.off))

let advance t =
  t.tok_pos <- t.off;
  t.tok <- scan t

let of_string src =
  let t = { src; off = 0; tok = EOF; tok_pos = 0; comment = None } in
  advance t;
  t

let peek t = t.tok

let peek2 t =
  let save_off = t.off and save_tok = t.tok and save_pos = t.tok_pos in
  let save_comment = t.comment in
  advance t;
  let tok2 = t.tok in
  t.off <- save_off;
  t.tok <- save_tok;
  t.tok_pos <- save_pos;
  t.comment <- save_comment;
  tok2

let next t =
  let tok = t.tok in
  advance t;
  tok

let pos t = t.tok_pos
let last_comment t = t.comment

let pp_token ppf = function
  | IDENT s -> Format.fprintf ppf "identifier %s" s
  | INT n -> Format.fprintf ppf "integer %d" n
  | BINCONST (w, b) -> Format.fprintf ppf "constant %d'b%s" w b
  | KW_VUNIT -> Format.pp_print_string ppf "vunit"
  | KW_PROPERTY -> Format.pp_print_string ppf "property"
  | KW_ASSERT -> Format.pp_print_string ppf "assert"
  | KW_ASSUME -> Format.pp_print_string ppf "assume"
  | KW_ALWAYS -> Format.pp_print_string ppf "always"
  | KW_NEVER -> Format.pp_print_string ppf "never"
  | KW_NEXT -> Format.pp_print_string ppf "next"
  | KW_UNTIL -> Format.pp_print_string ppf "until"
  | KW_EVENTUALLY -> Format.pp_print_string ppf "eventually!"
  | LPAREN -> Format.pp_print_string ppf "("
  | RPAREN -> Format.pp_print_string ppf ")"
  | LBRACE -> Format.pp_print_string ppf "{"
  | RBRACE -> Format.pp_print_string ppf "}"
  | LBRACKET -> Format.pp_print_string ppf "["
  | RBRACKET -> Format.pp_print_string ppf "]"
  | SEMI -> Format.pp_print_string ppf ";"
  | COLON -> Format.pp_print_string ppf ":"
  | EQ -> Format.pp_print_string ppf "="
  | EQEQ -> Format.pp_print_string ppf "=="
  | NEQ -> Format.pp_print_string ppf "!="
  | LT -> Format.pp_print_string ppf "<"
  | ARROW -> Format.pp_print_string ppf "->"
  | PIPE_ARROW -> Format.pp_print_string ppf "|->"
  | PIPE_FATARROW -> Format.pp_print_string ppf "|=>"
  | STAR -> Format.pp_print_string ppf "*"
  | AMP -> Format.pp_print_string ppf "&"
  | AMPAMP -> Format.pp_print_string ppf "&&"
  | BAR -> Format.pp_print_string ppf "|"
  | BARBAR -> Format.pp_print_string ppf "||"
  | CARET -> Format.pp_print_string ppf "^"
  | TILDE -> Format.pp_print_string ppf "~"
  | BANG -> Format.pp_print_string ppf "!"
  | EOF -> Format.pp_print_string ppf "end of input"
