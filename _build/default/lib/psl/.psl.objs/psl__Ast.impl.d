lib/psl/ast.ml: List Rtl Set String
