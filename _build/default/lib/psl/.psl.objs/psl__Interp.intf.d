lib/psl/interp.mli: Ast Bitvec
