lib/psl/monitor.mli: Ast Rtl
