lib/psl/lexer.ml: Format Printf String
