lib/psl/parser.ml: Ast Bitvec Format Lexer List Printf Rtl
