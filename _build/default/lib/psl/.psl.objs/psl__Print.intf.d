lib/psl/print.mli: Ast Format
