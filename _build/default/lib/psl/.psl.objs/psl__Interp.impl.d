lib/psl/interp.ml: Array Ast Bitvec Fun List Printf Rtl
