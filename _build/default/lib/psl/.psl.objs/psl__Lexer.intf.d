lib/psl/lexer.mli: Format
