lib/psl/parser.mli: Ast
