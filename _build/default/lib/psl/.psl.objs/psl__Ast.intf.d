lib/psl/ast.mli: Rtl
