lib/psl/print.ml: Ast Bitvec Format List Rtl
