lib/psl/monitor.ml: Ast List Option Printf Rtl String
