module E = Rtl.Expr

let rec pp_bool ppf (e : E.t) =
  match e with
  | E.Const bv ->
    Format.fprintf ppf "%d'b%s" (Bitvec.width bv) (Bitvec.to_string bv)
  | E.Var x -> Format.pp_print_string ppf x
  | E.Unop (E.Not, e) -> Format.fprintf ppf "~(%a)" pp_bool e
  | E.Unop (E.Red_xor, e) -> Format.fprintf ppf "(^%a)" pp_bool e
  | E.Unop (E.Red_and, e) -> Format.fprintf ppf "(&%a)" pp_bool e
  | E.Unop (E.Red_or, e) -> Format.fprintf ppf "(|%a)" pp_bool e
  | E.Binop (op, a, b) ->
    let sym =
      match op with
      | E.And -> "&"
      | E.Or -> "|"
      | E.Xor -> "^"
      | E.Xnor -> "~^"
      | E.Add -> "+"
      | E.Sub -> "-"
      | E.Eq -> "=="
      | E.Ne -> "!="
      | E.Lt -> "<"
      | E.Concat -> ","
    in
    if op = E.Concat then Format.fprintf ppf "{%a, %a}" pp_bool a pp_bool b
    else Format.fprintf ppf "(%a %s %a)" pp_bool a sym pp_bool b
  | E.Mux (s, t, e) ->
    Format.fprintf ppf "(%a ? %a : %a)" pp_bool s pp_bool t pp_bool e
  | E.Slice (e, hi, lo) ->
    if hi = lo then Format.fprintf ppf "%a[%d]" pp_bool e lo
    else Format.fprintf ppf "%a[%d:%d]" pp_bool e hi lo

let rec pp_sere ppf (s : Ast.sere) =
  match s with
  | Ast.Sbool e -> pp_bool ppf e
  | Ast.Sconcat (a, b) -> Format.fprintf ppf "%a; %a" pp_sere a pp_sere b
  | Ast.Srepeat (a, n) -> Format.fprintf ppf "%a[*%d]" pp_sere a n

let rec pp_fl ppf (f : Ast.fl) =
  match f with
  | Ast.Bool e -> pp_bool ppf e
  | Ast.Not f -> Format.fprintf ppf "!(%a)" pp_fl f
  | Ast.And (f, g) -> Format.fprintf ppf "(%a && %a)" pp_fl f pp_fl g
  | Ast.Or (f, g) -> Format.fprintf ppf "(%a || %a)" pp_fl f pp_fl g
  | Ast.Implies (f, g) -> Format.fprintf ppf "(%a -> %a)" pp_fl f pp_fl g
  | Ast.Next f -> Format.fprintf ppf "next %a" pp_fl f
  | Ast.Next_n (n, f) -> Format.fprintf ppf "next[%d] %a" n pp_fl f
  | Ast.Always f -> Format.fprintf ppf "always (%a)" pp_fl f
  | Ast.Never f -> Format.fprintf ppf "never (%a)" pp_fl f
  | Ast.Until (f, g) -> Format.fprintf ppf "(%a until %a)" pp_fl f pp_fl g
  | Ast.Seq_implies (s, overlap, f) ->
    Format.fprintf ppf "{%a} %s %a" pp_sere s
      (if overlap then "|->" else "|=>")
      pp_fl f
  | Ast.Eventually f -> Format.fprintf ppf "eventually! (%a)" pp_fl f

let pp_vunit ppf (v : Ast.vunit) =
  Format.fprintf ppf "vunit %s (%s) {@." v.vunit_name v.bound_module;
  List.iter
    (fun (d : Ast.decl) ->
      Format.fprintf ppf "    property %s = %a;" d.prop_name pp_fl d.body;
      (match d.comment with
       | Some c -> Format.fprintf ppf "  // %s" c
       | None -> ());
      Format.fprintf ppf "@.")
    v.decls;
  List.iter
    (fun (dve : Ast.directive) ->
      let kw = match dve.dir with Ast.Assert -> "assert" | Ast.Assume -> "assume" in
      Format.fprintf ppf "    %s %s;@." kw dve.target)
    v.directives;
  Format.fprintf ppf "}@."

let fl_to_string f = Format.asprintf "%a" pp_fl f
let vunit_to_string v = Format.asprintf "%a" pp_vunit v
