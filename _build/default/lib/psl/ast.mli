(** Abstract syntax for the PSL subset used by the methodology.

    The boolean layer is a 1-bit {!Rtl.Expr.t} over the bound module's
    signals. The temporal layer covers the simple-subset safety operators the
    paper's three stereotype properties use ([always], [never], [next],
    weak [until]) plus [eventually!] so liveness requests are representable
    and can be rejected with a clear error by the monitor compiler. *)

type sere =
  | Sbool of Rtl.Expr.t  (** one cycle satisfying a boolean *)
  | Sconcat of sere * sere  (** [{r1; r2}] *)
  | Srepeat of sere * int  (** [r[*n]], n >= 1 — bounded repetition *)

type fl =
  | Bool of Rtl.Expr.t  (** must be 1 bit wide *)
  | Not of fl
  | And of fl * fl
  | Or of fl * fl
  | Implies of fl * fl
  | Next of fl
  | Next_n of int * fl
  | Always of fl
  | Never of fl
  | Until of fl * fl  (** weak until *)
  | Seq_implies of sere * bool * fl
      (** suffix implication: whenever the SERE matches, [fl] holds at the
          match end ([|->], overlapping, [true]) or one cycle later
          ([|=>], [false]) *)
  | Eventually of fl

type direction = Assert | Assume

type decl = { prop_name : string; body : fl; comment : string option }

type directive = { dir : direction; target : string }

type vunit = {
  vunit_name : string;
  bound_module : string;
  decls : decl list;
  directives : directive list;
}

val property : vunit -> string -> fl
(** Look up a declared property by name. Raises [Not_found]. *)

val asserts : vunit -> (string * fl) list
val assumes : vunit -> (string * fl) list

val map_bool : (Rtl.Expr.t -> Rtl.Expr.t) -> fl -> fl
(** Rewrite every boolean-layer leaf (including SERE elements). *)

val expand_sere : sere -> Rtl.Expr.t list
(** The per-cycle boolean obligations of a bounded SERE, in order. *)

val sere_length : sere -> int

val is_safety : fl -> bool
(** Syntactic safety check: no [Eventually], no strong operators, and
    temporal [Or]/[Not]/[Until] restricted to the forms the monitor compiler
    accepts (see {!Monitor}). *)

val size : fl -> int
(** Node count — the paper's "description of the properties should be
    simple" metric. *)

val signals : fl -> string list
(** All module signals referenced by the boolean layer. *)
