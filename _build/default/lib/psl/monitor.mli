(** Safety-monitor synthesis: compile the PSL safety subset into monitor
    logic woven into a copy of the bound module.

    The instrumented module gains (per property set) a combinational [fail]
    signal that is high exactly in cycles where the asserted property is
    violated, plus assumption-tracking signals. Both the simulator (checking
    assertions during random simulation) and the model checker (invariant
    [never fail under assumptions]) consume the same instrumentation, which
    guarantees the two flows agree on property semantics. *)

exception Unsupported of string
(** Raised on liveness ([eventually!]) or temporal operands outside the
    supported safety forms (see {!Ast.is_safety}). *)

type instrumented = {
  mdl : Rtl.Mdl.t;  (** the module with monitor wires and registers added *)
  fail_signal : string;
      (** 1-bit wire: the asserted property fails in this cycle *)
  assume_fail_now : string;
      (** 1-bit wire: some assumption is violated in this cycle *)
  assume_failed_before : string;
      (** 1-bit register: an assumption was violated in an earlier cycle *)
  invariant_ok : string;
      (** 1-bit wire that must hold in all reachable states:
          [fail] implies an assumption was violated now or earlier *)
}

val instrument :
  Rtl.Mdl.t -> prefix:string -> assert_:Ast.fl -> assumes:Ast.fl list -> instrumented
(** [prefix] namespaces the added monitor signals; it must be fresh with
    respect to the module's signals. *)

val monitor_register_count : instrumented -> int
(** Registers added by the instrumentation (property state size). *)
