exception Error of string * int

module L = Lexer
module E = Rtl.Expr

let fail lx msg = raise (Error (msg, L.pos lx))

let expect lx tok what =
  let got = L.next lx in
  if got <> tok then
    fail lx (Format.asprintf "expected %s, got %a" what L.pp_token got)

let ident lx =
  match L.next lx with
  | L.IDENT s -> s
  | got -> fail lx (Format.asprintf "expected identifier, got %a" L.pp_token got)

(* Boolean-layer helpers: HDL subexpressions travel as [Ast.Bool]; width and
   1-bit-ness are checked later by the monitor compiler, which knows the
   bound module's signal widths. *)

let as_bool lx what = function
  | Ast.Bool e -> e
  | Ast.Not _ | Ast.And _ | Ast.Or _ | Ast.Implies _ | Ast.Next _
  | Ast.Next_n _ | Ast.Always _ | Ast.Never _ | Ast.Until _
  | Ast.Seq_implies _ | Ast.Eventually _ ->
    fail lx (what ^ " requires boolean-layer operands")

let starts_expression = function
  | L.IDENT _ | L.INT _ | L.BINCONST _ | L.LPAREN | L.TILDE | L.BANG
  | L.CARET | L.AMP | L.BAR | L.KW_ALWAYS | L.KW_NEVER | L.KW_NEXT
  | L.KW_EVENTUALLY ->
    true
  | L.RPAREN | L.LBRACE | L.RBRACE | L.LBRACKET | L.RBRACKET | L.SEMI
  | L.COLON | L.EQ | L.EQEQ | L.NEQ | L.LT | L.ARROW | L.PIPE_ARROW
  | L.PIPE_FATARROW | L.STAR | L.AMPAMP | L.BARBAR | L.KW_VUNIT
  | L.KW_PROPERTY | L.KW_ASSERT | L.KW_ASSUME | L.KW_UNTIL | L.EOF ->
    false

let rec fl lx = fl_imp lx

and fl_imp lx =
  let lhs = fl_until lx in
  if L.peek lx = L.ARROW then begin
    ignore (L.next lx);
    let rhs = fl_imp lx in
    Ast.Implies (lhs, rhs)
  end
  else lhs

and fl_until lx =
  let lhs = fl_or lx in
  if L.peek lx = L.KW_UNTIL then begin
    ignore (L.next lx);
    let rhs = fl_or lx in
    Ast.Until (lhs, rhs)
  end
  else lhs

and fl_or lx =
  let rec loop lhs =
    match L.peek lx with
    | L.BAR | L.BARBAR ->
      ignore (L.next lx);
      let rhs = fl_xor lx in
      let combined =
        match (lhs, rhs) with
        | Ast.Bool a, Ast.Bool b -> Ast.Bool E.(a |: b)
        | _ -> Ast.Or (lhs, rhs)
      in
      loop combined
    | _ -> lhs
  in
  loop (fl_xor lx)

and fl_xor lx =
  let rec loop lhs =
    if L.peek lx = L.CARET then begin
      ignore (L.next lx);
      if starts_expression (L.peek lx) then begin
        let rhs = fl_and lx in
        let a = as_bool lx "binary ^" lhs and b = as_bool lx "binary ^" rhs in
        loop (Ast.Bool E.(a ^: b))
      end
      else
        (* postfix reduction, the paper's [I^] spelling *)
        loop (Ast.Bool (E.red_xor (as_bool lx "postfix ^" lhs)))
    end
    else lhs
  in
  loop (fl_and lx)

and fl_and lx =
  let rec loop lhs =
    match L.peek lx with
    | L.AMP | L.AMPAMP ->
      ignore (L.next lx);
      let rhs = fl_cmp lx in
      let combined =
        match (lhs, rhs) with
        | Ast.Bool a, Ast.Bool b -> Ast.Bool E.(a &: b)
        | _ -> Ast.And (lhs, rhs)
      in
      loop combined
    | _ -> lhs
  in
  loop (fl_cmp lx)

and fl_cmp lx =
  let lhs = fl_unary lx in
  match L.peek lx with
  | L.EQEQ | L.NEQ | L.LT ->
    let op = L.next lx in
    let rhs = fl_unary lx in
    let a = as_bool lx "comparison" lhs and b = as_bool lx "comparison" rhs in
    Ast.Bool
      (match op with
       | L.EQEQ -> E.(a ==: b)
       | L.NEQ -> E.(a <>: b)
       | L.LT -> E.(a <: b)
       | _ -> assert false)
  | _ -> lhs

and sere_item lx =
  (* one SERE element: a boolean expression, optionally repeated [*n] *)
  let b = as_bool lx "SERE element" (fl_cmp lx) in
  if L.peek lx = L.LBRACKET && L.peek2 lx = L.STAR then begin
    ignore (L.next lx);
    expect lx L.STAR "*";
    let n =
      match L.next lx with
      | L.INT n when n >= 1 -> n
      | L.INT _ -> fail lx "repetition count must be >= 1"
      | got -> fail lx (Format.asprintf "expected count, got %a" L.pp_token got)
    in
    expect lx L.RBRACKET "]";
    Ast.Srepeat (Ast.Sbool b, n)
  end
  else Ast.Sbool b

and sere lx =
  let rec loop acc =
    if L.peek lx = L.SEMI then begin
      ignore (L.next lx);
      loop (Ast.Sconcat (acc, sere_item lx))
    end
    else acc
  in
  loop (sere_item lx)

and fl_unary lx =
  match L.peek lx with
  | L.LBRACE ->
    ignore (L.next lx);
    let s = sere lx in
    expect lx L.RBRACE "}";
    let overlap =
      match L.next lx with
      | L.PIPE_ARROW -> true
      | L.PIPE_FATARROW -> false
      | got ->
        fail lx (Format.asprintf "expected |-> or |=>, got %a" L.pp_token got)
    in
    Ast.Seq_implies (s, overlap, fl_unary lx)
  | L.KW_ALWAYS ->
    ignore (L.next lx);
    Ast.Always (fl_unary lx)
  | L.KW_NEVER ->
    ignore (L.next lx);
    Ast.Never (fl_unary lx)
  | L.KW_EVENTUALLY ->
    ignore (L.next lx);
    Ast.Eventually (fl_unary lx)
  | L.KW_NEXT ->
    ignore (L.next lx);
    if L.peek lx = L.LBRACKET then begin
      ignore (L.next lx);
      let n =
        match L.next lx with
        | L.INT n -> n
        | got ->
          fail lx (Format.asprintf "expected integer, got %a" L.pp_token got)
      in
      expect lx L.RBRACKET "]";
      Ast.Next_n (n, fl_unary lx)
    end
    else Ast.Next (fl_unary lx)
  | L.TILDE | L.BANG ->
    ignore (L.next lx);
    let operand = fl_unary lx in
    (match operand with
     | Ast.Bool e -> Ast.Bool E.(!:e)
     | _ -> Ast.Not operand)
  | L.CARET ->
    ignore (L.next lx);
    Ast.Bool (E.red_xor (as_bool lx "^ reduction" (fl_unary lx)))
  | L.AMP ->
    ignore (L.next lx);
    Ast.Bool (E.red_and (as_bool lx "& reduction" (fl_unary lx)))
  | L.BAR ->
    ignore (L.next lx);
    Ast.Bool (E.red_or (as_bool lx "| reduction" (fl_unary lx)))
  | _ -> fl_postfix lx

and fl_postfix lx =
  let rec loop operand =
    match L.peek lx with
    | L.LBRACKET when L.peek2 lx <> L.STAR ->
      ignore (L.next lx);
      let hi =
        match L.next lx with
        | L.INT n -> n
        | got ->
          fail lx (Format.asprintf "expected bit index, got %a" L.pp_token got)
      in
      let lo =
        if L.peek lx = L.COLON then begin
          ignore (L.next lx);
          match L.next lx with
          | L.INT n -> n
          | got ->
            fail lx
              (Format.asprintf "expected bit index, got %a" L.pp_token got)
        end
        else hi
      in
      expect lx L.RBRACKET "]";
      loop (Ast.Bool (E.slice (as_bool lx "bit select" operand) ~hi ~lo))
    | _ -> operand
  in
  loop (fl_atom lx)

and fl_atom lx =
  match L.next lx with
  | L.IDENT s -> Ast.Bool (E.var s)
  | L.INT 0 -> Ast.Bool E.fls
  | L.INT 1 -> Ast.Bool E.tru
  | L.INT n ->
    fail lx
      (Printf.sprintf "bare integer %d: use a sized constant like 4'b0011" n)
  | L.BINCONST (w, bits) ->
    let bv = Bitvec.of_string bits in
    if Bitvec.width bv <> w then
      fail lx
        (Printf.sprintf "constant width %d does not match %d digits" w
           (Bitvec.width bv));
    Ast.Bool (E.const bv)
  | L.LPAREN ->
    let inner = fl lx in
    (* Allow the paper's postfix reduction directly after ')': [( I^ )] has
       the caret inside, but [(EC)^] puts it after. *)
    expect lx L.RPAREN ")";
    inner
  | got -> fail lx (Format.asprintf "unexpected %a" L.pp_token got)

let item lx (decls, directives) =
  match L.next lx with
  | L.KW_PROPERTY ->
    let name = ident lx in
    expect lx L.EQ "=";
    let body = fl lx in
    expect lx L.SEMI ";";
    let comment = L.last_comment lx in
    (({ Ast.prop_name = name; body; comment } :: decls), directives)
  | L.KW_ASSERT ->
    let target = ident lx in
    expect lx L.SEMI ";";
    (decls, { Ast.dir = Ast.Assert; target } :: directives)
  | L.KW_ASSUME ->
    let target = ident lx in
    expect lx L.SEMI ";";
    (decls, { Ast.dir = Ast.Assume; target } :: directives)
  | got ->
    fail lx
      (Format.asprintf "expected property/assert/assume, got %a" L.pp_token got)

let vunit lx =
  expect lx L.KW_VUNIT "vunit";
  let vunit_name = ident lx in
  expect lx L.LPAREN "(";
  let bound_module = ident lx in
  expect lx L.RPAREN ")";
  expect lx L.LBRACE "{";
  let rec items acc =
    if L.peek lx = L.RBRACE then begin
      ignore (L.next lx);
      acc
    end
    else items (item lx acc)
  in
  let decls, directives = items ([], []) in
  { Ast.vunit_name; bound_module; decls = List.rev decls;
    directives = List.rev directives }

let vunits_of_string src =
  let lx = L.of_string src in
  let rec loop acc =
    if L.peek lx = L.EOF then List.rev acc else loop (vunit lx :: acc)
  in
  (try loop [] with L.Error (msg, p) -> raise (Error (msg, p)))

let fl_of_string src =
  let lx = L.of_string src in
  try
    let f = fl lx in
    expect lx L.EOF "end of input";
    f
  with L.Error (msg, p) -> raise (Error (msg, p))
