lib/mc/sym.ml: Array Bdd Bitvec Hashtbl List Printf Rtl
