lib/mc/trace.mli: Bitvec Format
