lib/mc/umc.ml: Array Bdd List Pobdd Reach Sym
