lib/mc/trace.ml: Bitvec Buffer Char Format List Printf String
