lib/mc/bmc.ml: Array Bitvec Cnf Hashtbl List Option Rtl Solver Trace Tseitin
