lib/mc/sym.mli: Bdd Bitvec Rtl
