lib/mc/engine.ml: Array Bdd Bmc Either Hashtbl Induction List Option Printf Psl Reach Rtl Sym Trace Umc Unix
