lib/mc/bmc.mli: Rtl Trace
