lib/mc/induction.mli: Rtl Trace
