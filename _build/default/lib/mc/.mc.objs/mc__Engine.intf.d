lib/mc/engine.mli: Psl Rtl Trace
