lib/mc/umc.mli: Bdd Reach Sym
