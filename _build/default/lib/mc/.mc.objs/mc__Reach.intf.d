lib/mc/reach.mli: Bdd Sym Trace
