lib/mc/induction.ml: Array Bmc Cnf Hashtbl List Option Rtl Solver Trace Tseitin
