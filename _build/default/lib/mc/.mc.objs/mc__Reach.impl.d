lib/mc/reach.ml: Array Bdd List Sym Trace
