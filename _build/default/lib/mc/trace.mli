(** Counterexample traces. *)

type cycle = {
  step : int;
  inputs : (string * Bitvec.t) list;
  state : (string * Bitvec.t) list;
}

type t = cycle list
(** Chronological; the last cycle exhibits the violation. *)

val length : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val replay_stimulus : t -> (string * Bitvec.t) list list
(** Per-cycle input vectors, ready to feed to the simulator to confirm the
    counterexample. *)

val to_vcd : t -> string
(** Render the counterexample as a VCD waveform (inputs and state, one
    timestep per cycle) for inspection in a wave viewer. *)

val write_vcd : t -> string -> unit
