type cycle = {
  step : int;
  inputs : (string * Bitvec.t) list;
  state : (string * Bitvec.t) list;
}

type t = cycle list

let length = List.length

let pp_binding ppf (name, v) =
  Format.fprintf ppf "%s=%a" name Bitvec.pp v

let pp ppf t =
  List.iter
    (fun c ->
      Format.fprintf ppf "cycle %d:@." c.step;
      Format.fprintf ppf "  inputs: %a@."
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
           pp_binding)
        c.inputs;
      Format.fprintf ppf "  state:  %a@."
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
           pp_binding)
        c.state)
    t

let to_string t = Format.asprintf "%a" pp t

let replay_stimulus t = List.map (fun c -> c.inputs) t

let vcd_id i =
  let base = 94 and first = 33 in
  let rec go i acc =
    let c = Char.chr (first + (i mod base)) in
    let acc = String.make 1 c ^ acc in
    if i < base then acc else go ((i / base) - 1) acc
  in
  go i ""

let to_vcd t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "$date formal counterexample $end\n";
  Buffer.add_string buf "$version repro data-integrity model checker $end\n";
  Buffer.add_string buf "$timescale 1ns $end\n$scope module trace $end\n";
  let signals =
    match t with
    | [] -> []
    | c :: _ ->
      List.mapi
        (fun i (name, v) -> (name, Bitvec.width v, vcd_id i))
        (c.inputs @ c.state)
  in
  List.iter
    (fun (name, w, id) ->
      let safe = String.map (fun ch -> if ch = '.' then '_' else ch) name in
      Buffer.add_string buf (Printf.sprintf "$var wire %d %s %s $end\n" w id safe))
    signals;
  Buffer.add_string buf "$upscope $end\n$enddefinitions $end\n";
  List.iter
    (fun c ->
      Buffer.add_string buf (Printf.sprintf "#%d\n" c.step);
      List.iter2
        (fun (_, w, id) (_, v) ->
          if w = 1 then
            Buffer.add_string buf
              (Printf.sprintf "%d%s\n" (if Bitvec.get v 0 then 1 else 0) id)
          else
            Buffer.add_string buf
              (Printf.sprintf "b%s %s\n" (Bitvec.to_string v) id))
        signals
        (c.inputs @ c.state))
    t;
  Buffer.contents buf

let write_vcd t path =
  let oc = open_out path in
  (try output_string oc (to_vcd t)
   with e ->
     close_out oc;
     raise e);
  close_out oc
